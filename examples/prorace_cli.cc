/**
 * @file
 * Command-line front end for the two-phase deployment:
 *
 *   prorace_cli list
 *       List every built-in workload (PARSEC / real-app / racy-bug).
 *   prorace_cli trace <workload> <trace-file> [--period N] [--seed N]
 *               [--driver prorace|vanilla] [--scale X]
 *       Online phase: run the workload under tracing and write the
 *       trace file (what the production machine does).
 *   prorace_cli analyze <workload> <trace-file> [--racez] [--scale X]
 *       Offline phase: load the trace and run the analysis pipeline
 *       (what the analysis machine does). --racez limits
 *       reconstruction to basic blocks, as the RaceZ baseline does.
 *   prorace_cli run <workload> [--period N] [--seed N] [--scale X]
 *       Both phases in one process.
 *   prorace_cli oracle [--count K] [--period N] [--seed N] [--jobs N]
 *       Generate K seeded planted-race workloads, run the full
 *       pipeline on each, and score the reports against the
 *       generator's exact ground truth (recall / precision / false
 *       positives). The quantitative health check for the whole
 *       reconstruction + detection stack.
 *   prorace_cli static-report <workload> [--scale X]
 *       Static binary analysis only: build the CFG, dataflow and
 *       escape passes over the workload binary and dump the results
 *       as JSONL on stdout (one summary record, one site-class
 *       record) with a human-readable digest on stderr.
 *
 * The <workload> program must be identical between trace and analyze
 * (same name and --scale), exactly as the offline phase needs the
 * production binary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/analysis.hh"
#include "baseline/racez.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "detect/fasttrack.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "replay/program_map.hh"
#include "trace/trace_file.hh"
#include "workload/registry.hh"

using namespace prorace;

namespace {

struct Args {
    std::string command;
    std::string workload;
    std::string trace_file;
    uint64_t period = 10000;
    uint64_t seed = 1;
    double scale = 1.0;
    unsigned jobs = 0; ///< offline analysis threads (0 = serial)
    size_t count = 5;  ///< generated workloads for the oracle command
    bool racez = false;
    bool vanilla = false;
    bool stats = false;        ///< dump shadow-structure counters
    bool no_prefilter = false; ///< disable the static access prefilter
};

/**
 * `--stats` dump: the paged-ProgramMap and FastTrack shadow counters
 * behind one offline analysis, for eyeballing structure behavior on
 * real workloads without a profiler.
 */
void
printShadowStats(const core::OfflineResult &result)
{
    const replay::ProgramMapStats &pm = result.replay_stats.program_map;
    const double hit_rate = pm.page_lookups
        ? 100.0 * static_cast<double>(pm.cache_hits) /
            static_cast<double>(pm.page_lookups)
        : 0.0;
    const double pm_probe = pm.page_lookups
        ? static_cast<double>(pm.probe_steps) /
            static_cast<double>(pm.page_lookups)
        : 0.0;
    std::printf("program map: %llu pages, %llu lookups "
                "(%.1f%% last-page cache hits, %.2f probes/lookup), "
                "%llu bulk invalidations\n",
                static_cast<unsigned long long>(pm.pages_allocated),
                static_cast<unsigned long long>(pm.page_lookups),
                hit_rate, pm_probe,
                static_cast<unsigned long long>(pm.mem_invalidations));

    const core::PrefilterStats &pf = result.prefilter;
    if (pf.enabled) {
        const double frac = pf.events_seen
            ? 100.0 * static_cast<double>(pf.pruned()) /
                static_cast<double>(pf.events_seen)
            : 0.0;
        std::printf("prefilter: %llu/%llu sites thread-local, "
                    "%llu/%llu events pruned (%.1f%%: %llu implicit "
                    "stack, %llu direct stack)\n",
                    static_cast<unsigned long long>(
                        pf.sites_thread_local),
                    static_cast<unsigned long long>(pf.sites_total),
                    static_cast<unsigned long long>(pf.pruned()),
                    static_cast<unsigned long long>(pf.events_seen),
                    frac,
                    static_cast<unsigned long long>(
                        pf.pruned_stack_implicit),
                    static_cast<unsigned long long>(
                        pf.pruned_stack_direct));
    } else {
        std::printf("prefilter: off (%s), %llu events seen\n",
                    pf.analysis_sound ? "disabled by flag"
                                      : "analysis not sound",
                    static_cast<unsigned long long>(pf.events_seen));
    }

    const detect::FastTrackStats &ft = result.detect_stats;
    const double ft_probe = ft.shadow_lookups
        ? static_cast<double>(ft.shadow_probe_steps) /
            static_cast<double>(ft.shadow_lookups)
        : 0.0;
    std::printf("fasttrack: %llu/%llu shadow slots, %llu lookups "
                "(%.2f probes/lookup), %llu epoch fast path, "
                "%llu read shares, %llu clock spills\n",
                static_cast<unsigned long long>(ft.shadow_slots),
                static_cast<unsigned long long>(ft.shadow_capacity),
                static_cast<unsigned long long>(ft.shadow_lookups),
                ft_probe,
                static_cast<unsigned long long>(ft.epoch_fast_path),
                static_cast<unsigned long long>(ft.read_shares),
                static_cast<unsigned long long>(ft.vc_spills));
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: prorace_cli list\n"
                 "       prorace_cli trace <workload> <file> [--period N]"
                 " [--seed N] [--driver prorace|vanilla] [--scale X]\n"
                 "       prorace_cli analyze <workload> <file> [--racez]"
                 " [--scale X] [--jobs N] [--stats] [--no-prefilter]\n"
                 "       prorace_cli run <workload> [--period N]"
                 " [--seed N] [--scale X] [--jobs N] [--stats]"
                 " [--no-prefilter]\n"
                 "       prorace_cli oracle [--count K] [--period N]"
                 " [--seed N] [--jobs N]\n"
                 "       prorace_cli static-report <workload>"
                 " [--scale X]\n"
                 "\n"
                 "--jobs N runs the offline analysis on N worker threads"
                 " (0 = serial; results are identical either way)\n"
                 "--stats dumps the shadow-structure counters (program-"
                 "map pages and probes, FastTrack table and clocks)\n"
                 "and the static-prefilter event counters\n"
                 "--no-prefilter keeps definitely-thread-local accesses "
                 "in the detector feed (the race report is identical; "
                 "detection just costs more)\n");
    return 2;
}

bool
parseFlags(int argc, char **argv, int first, Args &args)
{
    for (int i = first; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (flag == "--period") {
            const char *v = next();
            if (!v)
                return false;
            args.period = std::strtoull(v, nullptr, 10);
        } else if (flag == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            args.seed = std::strtoull(v, nullptr, 10);
        } else if (flag == "--scale") {
            const char *v = next();
            if (!v)
                return false;
            args.scale = std::atof(v);
        } else if (flag == "--jobs") {
            const char *v = next();
            if (!v)
                return false;
            args.jobs = static_cast<unsigned>(std::strtoul(v, nullptr,
                                                           10));
        } else if (flag == "--count") {
            const char *v = next();
            if (!v)
                return false;
            args.count = std::strtoul(v, nullptr, 10);
        } else if (flag == "--racez") {
            args.racez = true;
        } else if (flag == "--stats") {
            args.stats = true;
        } else if (flag == "--no-prefilter") {
            args.no_prefilter = true;
        } else if (flag == "--driver") {
            const char *v = next();
            if (!v)
                return false;
            args.vanilla = std::strcmp(v, "vanilla") == 0;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
            return false;
        }
    }
    return true;
}

int
cmdList()
{
    for (const std::string &name : workload::allWorkloadNames()) {
        auto w = workload::findWorkload(name, 0.01);
        std::printf("%-16s %s\n", name.c_str(),
                    w ? w->description.c_str() : "");
    }
    return 0;
}

int
cmdTrace(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    core::PipelineConfig cfg =
        core::proRaceConfig(args.period, args.seed, w->pt_filter);
    if (args.vanilla)
        cfg.session.tracing.driver = driver::DriverKind::kVanilla;
    cfg.session.run_baseline = true;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);
    trace::saveTrace(run.trace, args.trace_file);
    std::printf("traced %s: %llu insns, overhead %.2f%%, %llu samples "
                "(%llu dropped), %.1f KB -> %s\n",
                args.workload.c_str(),
                static_cast<unsigned long long>(run.total_insns),
                100.0 * run.overhead(),
                static_cast<unsigned long long>(run.stats.samples_taken),
                static_cast<unsigned long long>(
                    run.stats.samplesDropped()),
                run.trace.totalBytes() / 1024.0,
                args.trace_file.c_str());
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    core::OfflineOptions opt;
    opt.pt_filter = w->pt_filter;
    opt.num_threads = args.jobs;
    opt.static_prefilter = !args.no_prefilter;
    if (args.racez)
        opt.replay.mode = replay::ReplayMode::kBasicBlock;
    core::ParallelOfflineAnalyzer analyzer(*w->program, opt);
    auto analyzed = analyzer.analyzeFile(args.trace_file);
    if (!analyzed.ok()) {
        std::fprintf(stderr, "cannot analyze trace: %s\n",
                     analyzed.error().format().c_str());
        return 1;
    }
    core::OfflineResult result = std::move(analyzed.value());
    if (result.ingest_loss.hasLoss()) {
        std::printf("trace damaged; analyzing what survives (%s)\n",
                    result.ingest_loss.summary().c_str());
    }
    if (result.quarantine.windows_quarantined) {
        std::printf("quarantined %llu replay windows (%llu retried)\n",
                    static_cast<unsigned long long>(
                        result.quarantine.windows_quarantined),
                    static_cast<unsigned long long>(
                        result.quarantine.window_retries));
    }

    std::printf("decode %.3fs  reconstruct %.3fs  detect %.3fs  "
                "(%llu events, recovery %.1fx, %d regeneration "
                "rounds)\n",
                result.decode_seconds, result.reconstruct_seconds,
                result.detect_seconds,
                static_cast<unsigned long long>(
                    result.extended_trace_events),
                result.replay_stats.recoveryRatio(),
                result.regeneration_rounds);
    if (args.jobs > 0) {
        const exec::ExecutorStats &es = analyzer.executorStats();
        std::printf("executor: %llu tasks (%llu stolen), max queue %llu, "
                    "mean task %.1fus\n",
                    static_cast<unsigned long long>(es.executed),
                    static_cast<unsigned long long>(es.stolen),
                    static_cast<unsigned long long>(es.max_queue_depth),
                    es.task_seconds.mean() * 1e6);
    }
    if (args.stats)
        printShadowStats(result);
    std::printf("%s", result.report.format(w->program.get()).c_str());
    for (const workload::RacyBug &bug : w->bugs) {
        std::printf("ground truth %s: %s\n", bug.id.c_str(),
                    workload::bugDetected(bug, result.report)
                        ? "DETECTED"
                        : "not detected in this trace");
    }
    return result.report.empty() ? 1 : 0;
}

int
cmdRun(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    core::PipelineConfig cfg = args.racez
        ? baseline::raceZConfig(args.period, args.seed)
        : core::proRaceConfig(args.period, args.seed, w->pt_filter);
    cfg.offline.num_threads = args.jobs;
    cfg.offline.static_prefilter = !args.no_prefilter;
    core::PipelineResult result =
        core::runPipeline(*w->program, w->setup, cfg);
    if (args.stats)
        printShadowStats(result.offline);
    std::printf("%s", result.offline.report.format(w->program.get())
                          .c_str());
    for (const workload::RacyBug &bug : w->bugs) {
        std::printf("ground truth %s: %s\n", bug.id.c_str(),
                    workload::bugDetected(bug, result.offline.report)
                        ? "DETECTED"
                        : "not detected in this trace");
    }
    return 0;
}

int
cmdOracle(const Args &args)
{
    const auto battery = oracle::standardBattery(args.seed, args.count);
    oracle::ScoreAccumulator acc;
    std::printf("%-18s %-34s %7s %7s %6s %4s\n", "workload",
                "sites", "recall", "precis", "pairs", "fp");
    for (const oracle::GeneratorConfig &cfg : battery) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc = core::proRaceConfig(
            args.period, args.seed + 7, gw.workload.pt_filter);
        pc.offline.num_threads = args.jobs;
        core::PipelineResult result = core::runPipeline(
            *gw.workload.program, gw.workload.setup, pc);
        const oracle::OracleScore score =
            oracle::scoreReport(gw.truth, result.offline.report);
        acc.add(score);
        std::printf("%-18s %-34s %7.3f %7.3f %6zu %4zu\n",
                    gw.workload.name.c_str(),
                    gw.workload.description.c_str(), score.recall(),
                    score.precision(), score.truth_pairs,
                    score.false_positives);
        for (const auto &pair : score.missed)
            std::printf("  missed (%u, %u)\n", pair.first, pair.second);
        for (const auto &pair : score.spurious)
            std::printf("  spurious (%u, %u)\n", pair.first,
                        pair.second);
    }
    std::printf("\nperiod %llu over %zu workloads: recall %.3f, "
                "precision %.3f, %zu false positives\n",
                static_cast<unsigned long long>(args.period),
                battery.size(), acc.recall(), acc.precision(),
                acc.false_positives);
    return 0;
}

int
cmdStaticReport(const Args &args)
{
    auto w = workload::findWorkload(args.workload, args.scale);
    if (!w) {
        std::fprintf(stderr, "unknown workload: %s\n",
                     args.workload.c_str());
        return 1;
    }
    const analysis::ProgramAnalysis pa(*w->program);
    const analysis::StaticSummary s = pa.summary();

    // JSONL on stdout: one summary record, one site-class record.
    std::printf(
        "{\"type\":\"summary\",\"workload\":\"%s\",\"insns\":%llu,"
        "\"blocks\":%llu,\"edges\":%llu,\"reachable_blocks\":%llu,"
        "\"address_taken\":%llu,\"mem_sites\":%llu,"
        "\"thread_local_sites\":%llu,\"thread_local_fraction\":%.4f,"
        "\"invertible_insns\":%llu,\"learn_insns\":%llu,"
        "\"rsp_integrity\":%s,\"no_stack_escape\":%s,\"sound\":%s}\n",
        args.workload.c_str(),
        static_cast<unsigned long long>(s.insns),
        static_cast<unsigned long long>(s.blocks),
        static_cast<unsigned long long>(s.edges),
        static_cast<unsigned long long>(s.reachable_blocks),
        static_cast<unsigned long long>(s.address_taken),
        static_cast<unsigned long long>(s.mem_sites),
        static_cast<unsigned long long>(s.thread_local_sites),
        s.threadLocalFraction(),
        static_cast<unsigned long long>(s.invertible_insns),
        static_cast<unsigned long long>(s.learn_insns),
        s.rsp_integrity ? "true" : "false",
        s.no_stack_escape ? "true" : "false",
        s.rsp_integrity && s.no_stack_escape ? "true" : "false");

    uint64_t by_class[4] = {0, 0, 0, 0};
    for (analysis::SiteClass c : pa.escape().sites())
        ++by_class[static_cast<unsigned>(c)];
    std::printf(
        "{\"type\":\"sites\",\"workload\":\"%s\",\"no_access\":%llu,"
        "\"stack_implicit\":%llu,\"stack_direct\":%llu,"
        "\"may_shared\":%llu}\n",
        args.workload.c_str(),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kNoAccess)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kStackImplicit)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kStackDirect)]),
        static_cast<unsigned long long>(by_class[static_cast<unsigned>(
            analysis::SiteClass::kMayShared)]));

    // Human digest on stderr so stdout stays machine-parseable.
    std::fprintf(stderr,
                 "%s: %llu insns in %llu blocks (%llu reachable), "
                 "%llu edges, %llu address-taken\n"
                 "  %llu memory sites, %llu thread-local (%.1f%%), "
                 "%llu invertible insns, %llu learn insns\n"
                 "  rsp integrity %s, no stack escape %s\n",
                 args.workload.c_str(),
                 static_cast<unsigned long long>(s.insns),
                 static_cast<unsigned long long>(s.blocks),
                 static_cast<unsigned long long>(s.reachable_blocks),
                 static_cast<unsigned long long>(s.edges),
                 static_cast<unsigned long long>(s.address_taken),
                 static_cast<unsigned long long>(s.mem_sites),
                 static_cast<unsigned long long>(s.thread_local_sites),
                 100.0 * s.threadLocalFraction(),
                 static_cast<unsigned long long>(s.invertible_insns),
                 static_cast<unsigned long long>(s.learn_insns),
                 s.rsp_integrity ? "held" : "VIOLATED",
                 s.no_stack_escape ? "held" : "VIOLATED");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    Args args;
    args.command = argv[1];

    if (args.command == "list")
        return cmdList();
    if (args.command == "oracle") {
        if (!parseFlags(argc, argv, 2, args))
            return usage();
        return cmdOracle(args);
    }
    if (argc < 3)
        return usage();
    args.workload = argv[2];

    if (args.command == "trace" || args.command == "analyze") {
        if (argc < 4)
            return usage();
        args.trace_file = argv[3];
        if (!parseFlags(argc, argv, 4, args))
            return usage();
        return args.command == "trace" ? cmdTrace(args)
                                       : cmdAnalyze(args);
    }
    if (args.command == "run") {
        if (!parseFlags(argc, argv, 3, args))
            return usage();
        return cmdRun(args);
    }
    if (args.command == "static-report") {
        if (!parseFlags(argc, argv, 3, args))
            return usage();
        return cmdStaticReport(args);
    }
    return usage();
}

/**
 * @file
 * Figure 15 (beyond the paper): what the static access prefilter buys
 * the offline phase — extended-trace events pruned before FastTrack
 * and the resulting detection-stage speedup — measured on real
 * registry workloads, plus an oracle cell proving the pruning is
 * report-neutral.
 *
 * For each subject workload the online phase runs once; the same trace
 * is then analyzed twice per trial, prefilter on and off. Self-asserted
 * CI floors (exit 1 on violation, so the Release perf job gates on it):
 *   - the racy-pair set is byte-identical with the prefilter on and
 *     off, on every subject and every planted-race oracle workload
 *     (recall and precision exactly equal by construction);
 *   - at least one subject prunes a nonzero fraction of events;
 *   - at least one subject's median detection stage (prefilter cost
 *     included) is no slower with the prefilter on.
 *
 * `--json <path>` writes per-trial JSONL rows; `--jobs N` sets the
 * analysis thread count (default 2).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "workload/registry.hh"

namespace {

using namespace prorace;

const char *const kSubjects[] = {"pfscan", "pbzip2", "streamcluster",
                                 "swaptions"};
constexpr uint64_t kPeriod = 100;
constexpr uint64_t kSeed = 29;

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0.0 : v[v.size() / 2];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    unsigned jobs = 2;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    const int trials = bench::envTrials(3);
    const double scale = 0.05 * bench::envScale();

    bench::banner("Figure 15",
                  "Static escape-analysis prefilter: events pruned "
                  "before FastTrack and detection-stage speedup, with "
                  "report identity asserted.");
    std::printf("jobs = %u, trials = %d, period = %llu\n\n", jobs,
                trials,
                static_cast<unsigned long long>(kPeriod));
    std::printf("%-14s %10s %10s %8s %10s %10s %8s\n", "workload",
                "events", "pruned", "frac", "detect_on", "detect_off",
                "speedup");

    bool ok = true;
    double best_frac = 0.0;
    double best_speedup = 0.0;

    for (const char *name : kSubjects) {
        auto w = workload::findWorkload(name, scale);
        if (!w) {
            std::fprintf(stderr, "FAIL: unknown workload %s\n", name);
            ok = false;
            continue;
        }
        core::PipelineConfig pc =
            core::proRaceConfig(kPeriod, kSeed, w->pt_filter);
        core::RunArtifacts run =
            core::Session::run(*w->program, w->setup, pc.session);

        core::OfflineOptions on = pc.offline;
        on.num_threads = jobs;
        on.static_prefilter = true;
        core::OfflineOptions off = on;
        off.static_prefilter = false;

        std::vector<double> detect_on, detect_off;
        uint64_t events = 0, pruned = 0;
        oracle::RacePairSet pairs_on, pairs_off;
        for (int trial = 0; trial < trials; ++trial) {
            core::ParallelOfflineAnalyzer a_on(*w->program, on);
            core::OfflineResult r_on = a_on.analyze(run.trace);
            core::ParallelOfflineAnalyzer a_off(*w->program, off);
            core::OfflineResult r_off = a_off.analyze(run.trace);

            detect_on.push_back(r_on.detect_seconds);
            detect_off.push_back(r_off.detect_seconds);
            events = r_on.prefilter.events_seen;
            pruned = r_on.prefilter.pruned();
            pairs_on = oracle::reportPairs(r_on.report);
            pairs_off = oracle::reportPairs(r_off.report);
            if (pairs_on != pairs_off) {
                std::fprintf(stderr,
                             "FAIL: %s reports differ with the "
                             "prefilter on (%zu pairs) vs off (%zu)\n",
                             name, pairs_on.size(), pairs_off.size());
                ok = false;
            }
            json.record(
                "fig15_static_prune",
                {{"workload", name},
                 {"jobs", std::to_string(jobs)},
                 {"trial", std::to_string(trial)}},
                {{"events",
                  static_cast<double>(r_on.prefilter.events_seen)},
                 {"pruned", static_cast<double>(r_on.prefilter.pruned())},
                 {"pruned_frac",
                  r_on.prefilter.events_seen
                      ? static_cast<double>(r_on.prefilter.pruned()) /
                          static_cast<double>(r_on.prefilter.events_seen)
                      : 0.0},
                 {"sites_thread_local",
                  static_cast<double>(
                      r_on.prefilter.sites_thread_local)},
                 {"sites_total",
                  static_cast<double>(r_on.prefilter.sites_total)},
                 {"detect_on_s", r_on.detect_seconds},
                 {"detect_off_s", r_off.detect_seconds},
                 {"total_on_s", r_on.totalSeconds()},
                 {"total_off_s", r_off.totalSeconds()},
                 {"pairs", static_cast<double>(pairs_on.size())}});
        }

        const double mon = median(detect_on);
        const double moff = median(detect_off);
        const double frac = events
            ? static_cast<double>(pruned) / static_cast<double>(events)
            : 0.0;
        const double speedup = mon > 0 ? moff / mon : 0.0;
        best_frac = std::max(best_frac, frac);
        best_speedup = std::max(best_speedup, speedup);
        std::printf("%-14s %10llu %10llu %7.1f%% %9.4fs %9.4fs %7.2fx\n",
                    name, static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(pruned),
                    100.0 * frac, mon, moff, speedup);
    }

    // --- oracle cell: pruning must be invisible to ground truth ---
    std::printf("\noracle battery (report identity, prefilter on/off):\n");
    const auto battery = oracle::standardBattery(1077, 5);
    for (const oracle::GeneratorConfig &cfg : battery) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc = core::proRaceConfig(
            kPeriod, kSeed + 11, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);

        core::OfflineOptions on = pc.offline;
        on.num_threads = jobs;
        on.static_prefilter = true;
        core::OfflineOptions off = on;
        off.static_prefilter = false;

        core::ParallelOfflineAnalyzer a_on(*gw.workload.program, on);
        core::OfflineResult r_on = a_on.analyze(run.trace);
        core::ParallelOfflineAnalyzer a_off(*gw.workload.program, off);
        core::OfflineResult r_off = a_off.analyze(run.trace);

        const oracle::OracleScore s_on =
            oracle::scoreReport(gw.truth, r_on.report);
        const oracle::OracleScore s_off =
            oracle::scoreReport(gw.truth, r_off.report);
        const bool identical = oracle::reportPairs(r_on.report) ==
            oracle::reportPairs(r_off.report);
        if (!identical) {
            std::fprintf(stderr,
                         "FAIL: %s oracle pair sets differ with the "
                         "prefilter on vs off\n",
                         gw.workload.name.c_str());
            ok = false;
        }
        std::printf("  %-18s recall %.3f/%.3f precis %.3f/%.3f "
                    "pruned %llu %s\n",
                    gw.workload.name.c_str(), s_on.recall(),
                    s_off.recall(), s_on.precision(), s_off.precision(),
                    static_cast<unsigned long long>(
                        r_on.prefilter.pruned()),
                    identical ? "identical" : "DIFFER");
        json.record(
            "fig15_static_prune",
            {{"workload", gw.workload.name},
             {"jobs", std::to_string(jobs)},
             {"trial", "oracle"}},
            {{"events",
              static_cast<double>(r_on.prefilter.events_seen)},
             {"pruned", static_cast<double>(r_on.prefilter.pruned())},
             {"recall_on", s_on.recall()},
             {"recall_off", s_off.recall()},
             {"precision_on", s_on.precision()},
             {"precision_off", s_off.precision()},
             {"identical", identical ? 1.0 : 0.0}});
    }

    if (best_frac <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: no subject pruned any events — the "
                     "prefilter is dead\n");
        ok = false;
    }
    if (best_speedup < 1.0) {
        std::fprintf(stderr,
                     "FAIL: detection was slower with the prefilter on "
                     "for every subject (best %.2fx)\n",
                     best_speedup);
        ok = false;
    }
    std::printf("\nbest pruned fraction %.1f%%, best detect speedup "
                "%.2fx\n%s\n",
                100.0 * best_frac, best_speedup,
                ok ? "floors OK" : "FLOOR VIOLATION");
    return ok ? 0 : 1;
}

/**
 * @file
 * Figure 17 (beyond the paper): the v5 columnar trace compression and
 * run-level detection, against the v4 fixed-width baseline.
 *
 * For every racy-bug subject the harness traces once (period 10000,
 * fixed seed) and serializes to the v5 format. The encoder's
 * compression accounting gives the exact v4 bytes/event (the raw
 * fixed-width record sizes v4 wrote) next to the v5 bytes/event.
 * Detection then runs twice over the decoded trace — run folding on
 * (the v5 path) and off (the decompress-then-scan baseline, which
 * dispatches every stored iteration individually) — and the reports
 * are required to match byte for byte, including against analysis of
 * the never-serialized in-memory trace and across a small planted-race
 * oracle battery with exact ground truth.
 *
 * Self-asserted CI floors:
 *   - aggregate PEBS compression ratio >= 3x (raw/encoded bytes)
 *   - aggregate detection wall time with folding on <= the folding-off
 *     baseline, with a noise tolerance
 *   - every report-identity check holds
 *
 * `--json <path>` writes per-subject JSONL; `--jobs N` sets analysis
 * threads (default 0 = serial, so detection timing is undisturbed).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "oracle/generator.hh"
#include "support/timer.hh"
#include "trace/trace_file.hh"
#include "workload/racybugs.hh"

namespace {

using namespace prorace;

const char *kSubjects[] = {"apache-25520",  "mysql-3596",
                           "cherokee-0.9.2", "pbzip2-0.9.5", "pfscan",
                           "aget-bug2"};

/** Aggregate PEBS raw/encoded ratio the CI run must reach. */
constexpr double kRatioFloor = 3.0;

/**
 * Detection with folding may not be slower than without by more than
 * this factor plus the absolute slack — the times are milliseconds at
 * bench scale, so pure noise must not fail CI.
 */
constexpr double kDetectTolerance = 1.20;
constexpr double kDetectSlackSeconds = 0.005;

/** Min-of-trials detection time under the given run_summary mode. */
double
detectSeconds(const workload::Workload &w, core::OfflineOptions opt,
              const trace::RunTrace &run, bool run_summary, int trials,
              std::string *report_out)
{
    opt.run_summary = run_summary;
    double best = 1e9;
    for (int t = 0; t < trials; ++t) {
        core::ParallelOfflineAnalyzer analyzer(*w.program, opt);
        core::OfflineResult result = analyzer.analyze(run);
        best = std::min(best, result.detect_seconds);
        if (report_out)
            *report_out = result.report.format(w.program.get());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    unsigned jobs = 0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(std::strtoul(argv[i + 1],
                                                      nullptr, 10));
    }
    const int trials = bench::envTrials(3);

    bench::banner("Figure 17",
                  "Columnar trace compression (v5) vs fixed-width (v4) "
                  "bytes/event, and detection time with run folding on "
                  "vs the decompress-then-scan baseline.");
    std::printf("jobs = %u, trials per cell = %d\n\n", jobs, trials);
    std::printf("%-16s %8s %9s %9s %7s %7s %10s %10s %9s\n", "app",
                "events", "v4 B/ev", "v5 B/ev", "ratio", "runs",
                "detect ms", "base ms", "identical");

    uint64_t total_raw = 0, total_encoded = 0;
    double total_on = 0, total_off = 0;
    bool all_identical = true;

    for (const char *name : kSubjects) {
        auto bug = workload::makeRacyBug(name, bench::envScale());
        auto cfg = core::proRaceConfig(10000, 42, bug.pt_filter);
        core::RunArtifacts run =
            core::Session::run(*bug.program, bug.setup, cfg.session);
        const std::vector<uint8_t> bytes =
            trace::serializeTrace(run.trace);
        auto loaded = trace::readTrace(bytes);
        if (!loaded.ok() || loaded.value().loss.hasLoss()) {
            std::fprintf(stderr, "FAIL: %s round trip damaged\n", name);
            return 1;
        }
        const trace::RunTrace &decoded = loaded.value().trace;
        const trace::CompressionStats &cs = decoded.meta.compression;
        const uint64_t events = run.trace.pebs.size();

        core::OfflineOptions opt = cfg.offline;
        opt.num_threads = jobs;

        std::string on_report, off_report, mem_report;
        const double on_s = detectSeconds(bug, opt, decoded, true,
                                          trials, &on_report);
        const double off_s = detectSeconds(bug, opt, decoded, false,
                                           trials, &off_report);
        detectSeconds(bug, opt, run.trace, false, 1, &mem_report);
        const bool identical =
            on_report == off_report && on_report == mem_report;
        all_identical = all_identical && identical;

        total_raw += cs.pebs_raw_bytes;
        total_encoded += cs.pebs_encoded_bytes;
        total_on += on_s;
        total_off += off_s;

        const double v4_bpe = events
            ? static_cast<double>(cs.pebs_raw_bytes) /
                  static_cast<double>(events)
            : 0.0;
        const double v5_bpe = events
            ? static_cast<double>(cs.pebs_encoded_bytes) /
                  static_cast<double>(events)
            : 0.0;
        std::printf("%-16s %8llu %9.1f %9.1f %6.2fx %7llu %10.2f "
                    "%10.2f %9s\n",
                    name, static_cast<unsigned long long>(events),
                    v4_bpe, v5_bpe, cs.pebsRatio(),
                    static_cast<unsigned long long>(cs.run_blocks),
                    1e3 * on_s, 1e3 * off_s,
                    identical ? "yes" : "NO");
        std::fflush(stdout);

        json.record(
            "fig17_compressed_traces",
            {{"app", name}},
            {{"pebs_events", static_cast<double>(events)},
             {"v4_bytes_per_event", v4_bpe},
             {"v5_bytes_per_event", v5_bpe},
             {"pebs_ratio", cs.pebsRatio()},
             {"sync_raw_bytes",
              static_cast<double>(cs.sync_raw_bytes)},
             {"sync_encoded_bytes",
              static_cast<double>(cs.sync_encoded_bytes)},
             {"run_blocks", static_cast<double>(cs.run_blocks)},
             {"run_iterations_folded",
              static_cast<double>(cs.run_iterations_folded)},
             {"detect_on_s", on_s},
             {"detect_off_s", off_s},
             {"reports_identical", identical ? 1.0 : 0.0}});
    }

    // Planted-race battery: identity against exact ground truth setups.
    for (const oracle::GeneratorConfig &gcfg :
         oracle::standardBattery(/*seed=*/3, /*count=*/2)) {
        const oracle::GeneratedWorkload gw = oracle::generate(gcfg);
        auto cfg = core::proRaceConfig(5000, 9, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, cfg.session);
        auto loaded =
            trace::readTrace(trace::serializeTrace(run.trace));
        if (!loaded.ok() || loaded.value().loss.hasLoss()) {
            std::fprintf(stderr, "FAIL: oracle %s round trip damaged\n",
                         gw.workload.name.c_str());
            return 1;
        }
        core::OfflineOptions opt = cfg.offline;
        opt.num_threads = jobs;
        std::string on_report, off_report, mem_report;
        detectSeconds(gw.workload, opt, loaded.value().trace, true, 1,
                      &on_report);
        detectSeconds(gw.workload, opt, loaded.value().trace, false, 1,
                      &off_report);
        detectSeconds(gw.workload, opt, run.trace, false, 1,
                      &mem_report);
        const bool identical =
            on_report == off_report && on_report == mem_report;
        all_identical = all_identical && identical;
        std::printf("%-16s (oracle battery) reports %s\n",
                    gw.workload.name.c_str(),
                    identical ? "identical" : "DIVERGED");
    }

    const double ratio = total_encoded
        ? static_cast<double>(total_raw) /
              static_cast<double>(total_encoded)
        : 0.0;
    std::printf("\naggregate: pebs %llu -> %llu bytes (%.2fx, floor "
                "%.1fx), detect %.2fms folded vs %.2fms baseline\n",
                static_cast<unsigned long long>(total_raw),
                static_cast<unsigned long long>(total_encoded), ratio,
                kRatioFloor, 1e3 * total_on, 1e3 * total_off);

    if (!all_identical) {
        std::fprintf(stderr, "FAIL: a report diverged between the "
                             "compressed and baseline paths\n");
        return 1;
    }
    if (ratio < kRatioFloor) {
        std::fprintf(stderr, "FAIL: compression ratio %.2f below the "
                             "%.1f floor\n",
                     ratio, kRatioFloor);
        return 1;
    }
    if (total_on > total_off * kDetectTolerance + kDetectSlackSeconds) {
        std::fprintf(stderr,
                     "FAIL: folded detection %.2fms slower than the "
                     "%.2fms decompress-then-scan baseline\n",
                     1e3 * total_on, 1e3 * total_off);
        return 1;
    }
    std::printf("PASS: reports identical, compression and detection "
                "floors held\n");
    return 0;
}

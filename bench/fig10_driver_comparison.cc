/**
 * @file
 * Regenerates Figure 10: runtime overhead of the vanilla Linux PEBS
 * driver vs the ProRace driver, geometric means over the PARSEC suite
 * and the real-application suite.
 *
 * Paper reference points: PARSEC @10: vanilla ~50x vs ProRace 7.5x;
 * @100K: vanilla ~20% vs ProRace 4%.
 */

#include "bench_util.hh"
#include "overhead_common.hh"
#include "support/stats.hh"
#include "workload/apps.hh"

namespace {

using namespace prorace;

void
compareSuite(const char *label,
             const std::vector<workload::Workload> &suite,
             bench::JsonReporter &json)
{
    const auto &periods = bench::paperPeriods();
    std::printf("\n-- %s --\n%-10s", label, "driver");
    for (uint64_t p : periods)
        std::printf("%12s", ("P=" + std::to_string(p)).c_str());
    std::printf("\n");

    for (driver::DriverKind driver :
         {driver::DriverKind::kVanilla, driver::DriverKind::kProRace}) {
        std::printf("%-10s", driverName(driver));
        for (uint64_t period : periods) {
            std::vector<double> ratios;
            for (const auto &w : suite) {
                ratios.push_back(
                    1.0 + bench::runPoint(w, period, driver).overhead);
            }
            std::printf("%12s",
                        formatOverhead(geomean(ratios) - 1).c_str());
            json.record("fig10_driver_comparison",
                        {{"suite", label},
                         {"driver", driverName(driver)},
                         {"period", std::to_string(period)}},
                        {{"geomean_overhead", geomean(ratios) - 1}});
            std::fflush(stdout);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    bench::banner("Figure 10",
                  "Vanilla Linux PEBS driver vs the ProRace driver "
                  "(geomean overheads per suite).");
    compareSuite("PARSEC models",
                 workload::parsecWorkloads(bench::envScale()), json);
    compareSuite("real applications",
                 workload::realAppWorkloads(bench::envScale()), json);
    std::printf("\npaper (PARSEC): vanilla 50x @10 and ~20%% @100K; "
                "ProRace 7.52x @10 and 4%% @100K\n");
    return 0;
}

/**
 * @file
 * Figure 16 (beyond the paper): streaming analysis-service throughput
 * and the incremental detector's resident-memory bound.
 *
 * Part A — fleet throughput: N producer tenants stream recorded racy
 * subjects into one AnalysisService; reports events analyzed per
 * second, p50/p99 ingest-to-report latency, ingest high-water marks,
 * and the per-session detector residency ceiling across rising fleet
 * sizes.
 *
 * Part B — memory bound: the kvchurn subject (growing live set — each
 * item touches a fresh arena slice, barriers retire old slices) is
 * recorded at growing lengths and analyzed with the streaming
 * detector, GC on vs GC off. With GC off, resident shadow granules
 * track every granule ever touched and grow with the trace; with GC
 * on, quiescent state is swept at batch boundaries and residency
 * flattens to the working window.
 *
 * Self-asserted checks (the harness exits nonzero on violation):
 *   1. Report identity: GC on/off produce byte-identical reports at
 *      every length (sweeping provably-quiescent state is invisible).
 *   2. The GC sweeps reclaim state (granules_reclaimed > 0).
 *   3. Memory bound: at the longest trace, GC-on peak residency stays
 *      below the GC-off peak by a real margin, and grows by less than
 *      half the events growth across the sweep (flat ceiling, not
 *      linear).
 *   4. Fleet ingest memory: the queue's high-water never exceeds the
 *      per-tenant credit budget times the tenant count.
 *
 * `--json <path>` writes one JSONL record per configuration.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "service/fleet.hh"
#include "workload/registry.hh"

namespace {

using namespace prorace;

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(values.size() - 1) + 0.5);
    return values[idx];
}

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::printf("SELF-CHECK FAILED: %s\n", what);
        ++failures;
    }
}

/** Part A: one fleet configuration. */
void
runFleetConfig(unsigned producers, unsigned sessions, double scale,
               bench::JsonReporter &json)
{
    service::FleetConfig cfg;
    cfg.producers = producers;
    cfg.sessions_per_producer = sessions;
    cfg.scale = scale;
    cfg.period = 8;
    cfg.seed = 7;
    cfg.chunk_bytes = 4096;
    cfg.service.num_workers = 3;
    cfg.service.session_slots = 2;
    const service::FleetResult r = service::runFleet(cfg);

    const service::TenantServiceStats &roll = r.stats.rollup;
    const double events_per_s = r.wall_seconds > 0
        ? static_cast<double>(roll.incremental.events) / r.wall_seconds
        : 0;
    const double p50 = percentile(r.latencies, 0.5);
    const double p99 = percentile(r.latencies, 0.99);

    // Per-session residency ceiling: the largest shadow table any one
    // analysis ever held. Total service residency is bounded by
    // num_workers times this (only that many analyses coexist).
    const uint64_t session_peak = r.session_peak_granules;

    std::printf("%2u tenants x %u sessions: %7llu events in %6.2fs "
                "(%7.0f ev/s), latency p50 %6.1fms p99 %6.1fms, "
                "session peak %5llu granules, gc reclaimed %llu, "
                "ingest peak %llu KB\n",
                producers, sessions,
                static_cast<unsigned long long>(roll.incremental.events),
                r.wall_seconds, events_per_s, p50 * 1e3, p99 * 1e3,
                static_cast<unsigned long long>(session_peak),
                static_cast<unsigned long long>(
                    roll.incremental.granules_reclaimed),
                static_cast<unsigned long long>(
                    r.stats.ingest.peak_buffered_bytes >> 10));

    check(r.stats.rollup.sessions_failed == 0, "no failed sessions");
    check(r.stats.rollup.sessions_completed ==
              static_cast<uint64_t>(producers) * sessions,
          "every opened session completed");
    check(r.stats.ingest.peak_buffered_bytes <=
              cfg.service.ingest.credit_bytes * producers,
          "ingest memory bounded by credit x tenants");
    check(r.stats.distinct_races > 0, "fleet finds the planted races");

    json.record("fig16_fleet",
                {{"producers", std::to_string(producers)},
                 {"sessions", std::to_string(sessions)}},
                {{"events", static_cast<double>(roll.incremental.events)},
                 {"wall_s", r.wall_seconds},
                 {"events_per_s", events_per_s},
                 {"latency_p50_s", p50},
                 {"latency_p99_s", p99},
                 {"session_peak_granules",
                  static_cast<double>(session_peak)},
                 {"gc_granules_reclaimed",
                  static_cast<double>(roll.incremental.granules_reclaimed)},
                 {"ingest_peak_bytes",
                  static_cast<double>(r.stats.ingest.peak_buffered_bytes)},
                 {"distinct_races",
                  static_cast<double>(r.stats.distinct_races)}});
}

struct MemoryPoint {
    uint64_t events = 0;
    uint64_t gc_peak = 0;
    uint64_t nogc_peak = 0;
    uint64_t reclaimed = 0;
};

/** Part B: one trace length, streaming analysis with GC on vs off. */
MemoryPoint
runMemoryPoint(const std::string &subject, double scale,
               bench::JsonReporter &json)
{
    auto w = workload::findWorkload(subject, scale);
    if (!w) {
        check(false, "memory-bound subject exists");
        return {};
    }
    core::PipelineConfig cfg = core::proRaceConfig(4, 11, w->pt_filter);
    cfg.session.run_baseline = false;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);

    core::OfflineOptions gc_on;
    gc_on.pt_filter = w->pt_filter;
    gc_on.incremental.enabled = true;
    gc_on.incremental.batch_events = 1024;
    gc_on.incremental.gc_min_events = 256;
    core::OfflineOptions gc_off = gc_on;
    gc_off.incremental.enable_gc = false;

    core::OfflineAnalyzer on(*w->program, gc_on);
    core::OfflineAnalyzer off(*w->program, gc_off);
    const core::OfflineResult with_gc = on.analyze(run.trace);
    const core::OfflineResult without_gc = off.analyze(run.trace);

    check(with_gc.report.format(w->program.get()) ==
              without_gc.report.format(w->program.get()),
          "GC on/off reports byte-identical");

    MemoryPoint point;
    point.events = with_gc.incremental.events;
    point.gc_peak = with_gc.incremental.peak_live_granules;
    point.nogc_peak = without_gc.incremental.peak_live_granules;
    point.reclaimed = with_gc.incremental.granules_reclaimed;

    std::printf("scale %4.2f: %7llu events, peak granules %6llu with "
                "GC / %6llu without (%.2fx), %llu reclaimed in %llu "
                "sweeps\n",
                scale,
                static_cast<unsigned long long>(point.events),
                static_cast<unsigned long long>(point.gc_peak),
                static_cast<unsigned long long>(point.nogc_peak),
                point.gc_peak
                    ? static_cast<double>(point.nogc_peak) /
                        static_cast<double>(point.gc_peak)
                    : 0.0,
                static_cast<unsigned long long>(point.reclaimed),
                static_cast<unsigned long long>(
                    with_gc.incremental.gc_sweeps));

    json.record("fig16_memory",
                {{"subject", subject},
                 {"scale", std::to_string(scale)}},
                {{"events", static_cast<double>(point.events)},
                 {"gc_peak_granules", static_cast<double>(point.gc_peak)},
                 {"nogc_peak_granules",
                  static_cast<double>(point.nogc_peak)},
                 {"granules_reclaimed",
                  static_cast<double>(point.reclaimed)}});
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    const double scale = bench::envScale(0.5);

    bench::banner("Figure 16 (beyond the paper)",
                  "Streaming service throughput and the incremental "
                  "detector's memory bound");

    std::printf("\n-- fleet throughput (racy subjects, streamed in 4 KB "
                "chunks) --\n");
    runFleetConfig(2, 2, scale, json);
    runFleetConfig(3, 2, scale, json);
    runFleetConfig(4, 3, scale, json);

    std::printf("\n-- detector residency vs trace length (subject "
                "kvchurn, growing live set) --\n");
    std::vector<MemoryPoint> points;
    for (const double s : {0.5, 1.0, 2.0, 4.0})
        points.push_back(runMemoryPoint("kvchurn", s * scale, json));

    const MemoryPoint &first = points.front();
    const MemoryPoint &last = points.back();
    check(last.reclaimed > 0, "GC reclaims state on the longest trace");
    check(last.events > first.events * 2,
          "the sweep actually grows the trace");
    check(last.nogc_peak > first.nogc_peak * 2,
          "unswept residency grows with the trace");
    check(last.gc_peak * 2 <= last.nogc_peak,
          "GC peak residency at most half the unswept residency");
    // Flat ceiling: the unswept shadow table grows with the trace
    // while the GC-on peak grows at less than half that rate.
    const double nogc_growth = first.nogc_peak
        ? static_cast<double>(last.nogc_peak) /
            static_cast<double>(first.nogc_peak)
        : 0;
    const double gc_growth = first.gc_peak
        ? static_cast<double>(last.gc_peak) /
            static_cast<double>(first.gc_peak)
        : 0;
    std::printf("\nunswept residency grew %.1fx, GC-on peak grew %.1fx\n",
                nogc_growth, gc_growth);
    check(gc_growth < nogc_growth * 0.5,
          "residency ceiling flat relative to shadow growth");

    if (failures) {
        std::printf("\n%d self-check(s) FAILED\n", failures);
        return 1;
    }
    std::printf("\nall self-checks passed\n");
    return 0;
}

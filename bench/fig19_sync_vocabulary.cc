/**
 * @file
 * Figure 19 (beyond the paper): the rich sync vocabulary end to end —
 * recall vs sampling period on the planted-race families only the new
 * primitives can express (rwlock upgrade races, semaphore-as-signal
 * misuse, broken spinlock publication, relaxed-atomic data races),
 * plus macro throughput on the concurrency archetypes built from
 * them (lock-free MPMC queue, RCU-style reader/writer table,
 * event-loop server).
 *
 * Self-asserted CI floors:
 *   - every racy family scores recall 1.0 with zero false positives
 *     at period 1
 *   - every racy family keeps recall >= 0.90 at period 10
 *   - the all-clean-families workload reports nothing at period 1
 *   - clean archetypes report nothing; the racy MPMC variant's two
 *     planted bugs are both detected at period 1
 *   - serial/parallel and folded/unfolded reports are byte-identical
 *     on a sync-heavy subject
 * Exit status 1 on any violation, so the Release perf job gates on it.
 *
 * `--json <path>` writes per-trial JSONL rows.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/offline.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "support/timer.hh"
#include "trace/trace_file.hh"
#include "workload/archetypes.hh"

namespace {

using namespace prorace;

const uint64_t kPeriods[] = {1, 10, 100, 1000};
constexpr double kRecallFloorAtPeriodTen = 0.90;

struct Family {
    const char *name;
    unsigned oracle::GeneratorConfig::*racy;
    unsigned oracle::GeneratorConfig::*clean;
};

const Family kFamilies[] = {
    {"rw-upgrade", &oracle::GeneratorConfig::rw_racy_sites,
     &oracle::GeneratorConfig::rw_locked_sites},
    {"sem-misuse", &oracle::GeneratorConfig::sem_racy_sites,
     &oracle::GeneratorConfig::sem_signal_sites},
    {"spin-publication", &oracle::GeneratorConfig::spin_racy_sites,
     &oracle::GeneratorConfig::spin_locked_sites},
    {"relaxed-atomic", &oracle::GeneratorConfig::relaxed_racy_sites,
     &oracle::GeneratorConfig::relacq_sites},
};

oracle::GeneratorConfig
familyConfig(const Family &family, uint64_t seed)
{
    oracle::GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.threads = 4;
    cfg.items = 40;
    cfg.racy_sites = 0;
    cfg.*family.racy = 2;
    cfg.*family.clean = 1; // clean sync noise of the same primitive
    return cfg;
}

bool
recallSweep(bench::JsonReporter &json, int trials)
{
    std::printf("%-18s %7s %8s %10s %4s\n", "family", "period",
                "recall", "truthpairs", "fp");
    bool ok = true;
    for (const Family &family : kFamilies) {
        for (const uint64_t period : kPeriods) {
            oracle::ScoreAccumulator acc;
            for (int trial = 0; trial < trials; ++trial) {
                const oracle::GeneratedWorkload gw = oracle::generate(
                    familyConfig(family, 1901 + 2 * trial));
                auto pc = core::proRaceConfig(period, 7 + 13 * trial,
                                              gw.workload.pt_filter);
                const core::PipelineResult result = core::runPipeline(
                    *gw.workload.program, gw.workload.setup, pc);
                const oracle::OracleScore score = oracle::scoreReport(
                    gw.truth, result.offline.report);
                acc.add(score);
                json.record(
                    "fig19_sync_vocabulary",
                    {{"family", family.name},
                     {"period", std::to_string(period)},
                     {"trial", std::to_string(trial)}},
                    {{"recall", score.recall()},
                     {"precision", score.precision()},
                     {"truth_pairs",
                      static_cast<double>(score.truth_pairs)},
                     {"detected",
                      static_cast<double>(score.detected_pairs)},
                     {"false_positives",
                      static_cast<double>(score.false_positives)}});
            }
            std::printf("%-18s %7llu %8.3f %10zu %4zu\n", family.name,
                        static_cast<unsigned long long>(period),
                        acc.recall(), acc.truth_pairs,
                        acc.false_positives);
            std::fflush(stdout);
            if (period == 1 &&
                (acc.recall() < 1.0 || acc.false_positives != 0)) {
                std::fprintf(stderr,
                             "FAIL: %s at period 1: recall %.3f, %zu "
                             "false positives (must be 1.0 and 0)\n",
                             family.name, acc.recall(),
                             acc.false_positives);
                ok = false;
            }
            if (period == 10 &&
                acc.recall() < kRecallFloorAtPeriodTen) {
                std::fprintf(stderr,
                             "FAIL: %s at period 10: recall %.3f is "
                             "below the %.2f floor\n",
                             family.name, acc.recall(),
                             kRecallFloorAtPeriodTen);
                ok = false;
            }
        }
    }
    return ok;
}

bool
cleanFamiliesStaySilent()
{
    oracle::GeneratorConfig cfg;
    cfg.seed = 77;
    cfg.threads = 4;
    cfg.items = 40;
    cfg.racy_sites = 0;
    cfg.rw_locked_sites = 1;
    cfg.sem_signal_sites = 1;
    cfg.spin_locked_sites = 1;
    cfg.relacq_sites = 1;
    const oracle::GeneratedWorkload gw = oracle::generate(cfg);
    auto pc = core::proRaceConfig(1, 5, gw.workload.pt_filter);
    const core::PipelineResult result = core::runPipeline(
        *gw.workload.program, gw.workload.setup, pc);
    if (!result.offline.report.empty()) {
        std::fprintf(stderr,
                     "FAIL: all-clean sync families reported %zu "
                     "race(s) at period 1:\n%s",
                     result.offline.report.size(),
                     result.offline.report.format(
                         gw.workload.program.get()).c_str());
        return false;
    }
    std::printf("clean families silent at period 1: OK\n");
    return true;
}

bool
archetypeThroughput(bench::JsonReporter &json)
{
    std::printf("\n%-18s %10s %12s %12s %7s\n", "archetype", "insns",
                "analysis s", "insns/s", "races");
    bool ok = true;
    for (const std::string &name : workload::archetypeNames()) {
        const bool racy = name == "mpmc-queue-racy";
        const workload::Workload w =
            workload::makeArchetype(name, bench::envScale());
        // Period 1 for the racy variant (the detection floor below
        // needs every access); a production-shaped period elsewhere.
        auto pc = core::proRaceConfig(racy ? 1 : 200, 9, w.pt_filter);
        Stopwatch timer;
        const core::PipelineResult result =
            core::runPipeline(*w.program, w.setup, pc);
        const double seconds = timer.lap();
        const double insns =
            static_cast<double>(result.online.trace.meta.total_insns);
        std::printf("%-18s %10.0f %12.3f %12.0f %7zu\n", name.c_str(),
                    insns, result.offline.totalSeconds(),
                    insns / std::max(seconds, 1e-9),
                    result.offline.report.size());
        std::fflush(stdout);
        json.record("fig19_sync_vocabulary",
                    {{"archetype", name}},
                    {{"total_insns", insns},
                     {"analysis_s", result.offline.totalSeconds()},
                     {"races",
                      static_cast<double>(
                          result.offline.report.size())}});
        if (racy) {
            for (const workload::RacyBug &bug : w.bugs)
                if (!workload::bugDetected(bug,
                                           result.offline.report)) {
                    std::fprintf(stderr,
                                 "FAIL: %s bug %s undetected at "
                                 "period 1\n",
                                 name.c_str(), bug.id.c_str());
                    ok = false;
                }
        } else if (!result.offline.report.empty()) {
            std::fprintf(stderr,
                         "FAIL: clean archetype %s reported %zu "
                         "race(s)\n",
                         name.c_str(), result.offline.report.size());
            ok = false;
        }
    }
    return ok;
}

bool
reportIdentity()
{
    // Serial vs parallel and folded vs unfolded on a subject that uses
    // every new primitive at once.
    oracle::GeneratorConfig cfg;
    cfg.seed = 41;
    cfg.threads = 4;
    cfg.items = 40;
    cfg.racy_sites = 1;
    cfg.rw_racy_sites = 1;
    cfg.sem_racy_sites = 1;
    cfg.spin_racy_sites = 1;
    cfg.relaxed_racy_sites = 1;
    const oracle::GeneratedWorkload gw = oracle::generate(cfg);
    auto pc = core::proRaceConfig(2, 3, gw.workload.pt_filter);
    core::RunArtifacts run = core::Session::run(
        *gw.workload.program, gw.workload.setup, pc.session);
    const asmkit::Program *prog = gw.workload.program.get();

    std::string baseline;
    bool ok = true;
    for (const unsigned jobs : {0u, 3u}) {
        for (const bool folded : {true, false}) {
            core::OfflineOptions opt = pc.offline;
            opt.num_threads = jobs;
            opt.run_summary = folded;
            core::ParallelOfflineAnalyzer analyzer(*gw.workload.program,
                                                   opt);
            const std::string report =
                analyzer.analyze(run.trace).report.format(prog);
            if (baseline.empty())
                baseline = report;
            else if (report != baseline) {
                std::fprintf(stderr,
                             "FAIL: jobs=%u folded=%d report diverged "
                             "on %s\n",
                             jobs, int(folded),
                             gw.workload.name.c_str());
                ok = false;
            }
        }
    }
    if (ok)
        std::printf("\nserial/parallel x folded/unfolded identity: OK "
                    "(%s)\n", gw.workload.name.c_str());
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    const int trials = bench::envTrials(3);

    bench::banner("Figure 19",
                  "Rich sync vocabulary: recall vs period on the "
                  "rwlock/semaphore/spinlock/atomic race families, and "
                  "archetype macro throughput.");
    std::printf("trials per cell = %d\n\n", trials);

    bool ok = recallSweep(json, trials);
    ok = cleanFamiliesStaySilent() && ok;
    ok = archetypeThroughput(json) && ok;
    ok = reportIdentity() && ok;

    std::printf("%s\n", ok ? "floors OK" : "FLOOR VIOLATION");
    return ok ? 0 : 1;
}

/**
 * @file
 * Figure 14 (beyond the paper): ground-truth recall vs sampling
 * period on generated planted-race workloads — the shape of the
 * paper's Fig 11 / Table 2 measured against an exact oracle instead
 * of a hand-curated bug list.
 *
 * A battery of >= 5 seeded workloads from oracle::standardBattery is
 * traced at each period, analyzed, and scored with oracle::scoreReport
 * against the generator's exact racy-pair set. Two extra dimensions
 * ride along: trace corruption (1% segment bit flips through the
 * fault-ingestion path) and an analysis-jobs identity check (the
 * parallel analyzer must score identically to the serial one).
 *
 * Self-asserted CI floors, checked on the clean jobs=N cells:
 *   - mean recall >= 0.95 at period 1
 *   - mean recall never increases by more than 0.10 from one period
 *     to the next larger one (monotonically plausible degradation)
 *   - no analysis crash anywhere, corrupted inputs included
 * Exit status 1 on any violation, so the Release perf job gates on it.
 *
 * `--json <path>` writes per-trial JSONL rows; `--jobs N` sets the
 * analysis thread count (default 2).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/offline.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "fault_injection.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"

namespace {

using namespace prorace;

const uint64_t kPeriods[] = {1, 10, 100, 1000, 10000};

/** Periods that also get a corrupted-trace cell (bounds run time). */
const uint64_t kCorruptPeriods[] = {100, 10000};
constexpr double kCorruptRate = 0.01;

constexpr double kRecallFloorAtPeriodOne = 0.95;
constexpr double kMonotonicSlack = 0.10;

struct TrialScore {
    bool crashed = false;
    bool rejected = false;
    oracle::OracleScore score;
};

TrialScore
runTrial(const oracle::GeneratedWorkload &gw,
         const core::OfflineOptions &opt,
         const std::vector<uint8_t> &bytes)
{
    TrialScore out;
    try {
        auto loaded = trace::readTrace(bytes);
        if (!loaded.ok()) {
            out.rejected = true;
            return out;
        }
        core::ParallelOfflineAnalyzer analyzer(*gw.workload.program, opt);
        core::OfflineResult result = analyzer.analyze(loaded.value().trace);
        out.score = oracle::scoreReport(gw.truth, result.report);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "CRASH: analysis threw: %s\n", e.what());
        out.crashed = true;
    } catch (...) {
        std::fprintf(stderr, "CRASH: analysis threw a non-exception\n");
        out.crashed = true;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    unsigned jobs = 2;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    const int trials = bench::envTrials(3);
    const size_t battery_size = std::max<size_t>(
        5, static_cast<size_t>(5.0 * bench::envScale()));
    const auto battery = oracle::standardBattery(1001, battery_size);

    bench::banner("Figure 14",
                  "Ground-truth race recall vs PEBS sampling period on "
                  "generated planted-race workloads.");
    std::printf("workloads = %zu, jobs = %u, trials per cell = %d\n\n",
                battery.size(), jobs, trials);
    std::printf("%-18s %7s %8s %8s %10s %4s\n", "workload", "period",
                "recall", "precis", "truthpairs", "fp");

    bool any_crash = false;
    std::vector<double> mean_by_period;

    for (const uint64_t period : kPeriods) {
        oracle::ScoreAccumulator period_acc;
        for (const oracle::GeneratorConfig &cfg : battery) {
            const oracle::GeneratedWorkload gw = oracle::generate(cfg);
            oracle::ScoreAccumulator acc;
            for (int trial = 0; trial < trials; ++trial) {
                const uint64_t machine_seed = 7 + 13 * trial;
                auto pc = core::proRaceConfig(period, machine_seed,
                                              gw.workload.pt_filter);
                pc.offline.num_threads = jobs;
                core::RunArtifacts run = core::Session::run(
                    *gw.workload.program, gw.workload.setup, pc.session);
                const std::vector<uint8_t> clean =
                    trace::serializeTrace(run.trace);

                const TrialScore out = runTrial(gw, pc.offline, clean);
                any_crash = any_crash || out.crashed;
                if (out.crashed || out.rejected)
                    continue;
                acc.add(out.score);
                json.record(
                    "fig14_oracle_recall",
                    {{"workload", gw.workload.name},
                     {"period", std::to_string(period)},
                     {"corrupt", "0"},
                     {"jobs", std::to_string(jobs)},
                     {"trial", std::to_string(trial)}},
                    {{"recall", out.score.recall()},
                     {"precision", out.score.precision()},
                     {"truth_pairs",
                      static_cast<double>(out.score.truth_pairs)},
                     {"detected",
                      static_cast<double>(out.score.detected_pairs)},
                     {"reported",
                      static_cast<double>(out.score.reported_pairs)},
                     {"false_positives",
                      static_cast<double>(out.score.false_positives)}});

                // Serial/parallel identity: the work-stealing analyzer
                // must not move the score.
                if (trial == 0 && period == 100) {
                    try {
                        core::OfflineOptions serial = pc.offline;
                        serial.num_threads = 1;
                        core::OfflineAnalyzer analyzer(
                            *gw.workload.program, serial);
                        const oracle::OracleScore serial_score =
                            oracle::scoreReport(
                                gw.truth,
                                analyzer.analyze(run.trace).report);
                        if (serial_score.detected_pairs !=
                            out.score.detected_pairs) {
                            std::fprintf(stderr,
                                         "FAIL: jobs=%u scored %zu "
                                         "pairs, serial %zu on %s\n",
                                         jobs, out.score.detected_pairs,
                                         serial_score.detected_pairs,
                                         gw.workload.name.c_str());
                            any_crash = true;
                        }
                        json.record(
                            "fig14_oracle_recall",
                            {{"workload", gw.workload.name},
                             {"period", std::to_string(period)},
                             {"corrupt", "0"},
                             {"jobs", "1"},
                             {"trial", std::to_string(trial)}},
                            {{"recall", serial_score.recall()},
                             {"precision", serial_score.precision()},
                             {"truth_pairs",
                              static_cast<double>(
                                  serial_score.truth_pairs)},
                             {"detected",
                              static_cast<double>(
                                  serial_score.detected_pairs)},
                             {"reported",
                              static_cast<double>(
                                  serial_score.reported_pairs)},
                             {"false_positives",
                              static_cast<double>(
                                  serial_score.false_positives)}});
                    } catch (const std::exception &e) {
                        std::fprintf(stderr, "CRASH: serial: %s\n",
                                     e.what());
                        any_crash = true;
                    }
                }

                // Corrupted-trace cell: degraded input may lose races
                // but must never crash or fabricate a crash report.
                bool want_corrupt = false;
                for (const uint64_t p : kCorruptPeriods)
                    want_corrupt = want_corrupt || p == period;
                if (want_corrupt) {
                    std::vector<uint8_t> damaged = clean;
                    Rng corrupt_rng(cfg.seed * 1000003ull + period +
                                    static_cast<uint64_t>(trial));
                    fault::corruptSegments(damaged, kCorruptRate,
                                           corrupt_rng);
                    const TrialScore hurt =
                        runTrial(gw, pc.offline, damaged);
                    any_crash = any_crash || hurt.crashed;
                    if (!hurt.crashed && !hurt.rejected) {
                        json.record(
                            "fig14_oracle_recall",
                            {{"workload", gw.workload.name},
                             {"period", std::to_string(period)},
                             {"corrupt", std::to_string(kCorruptRate)},
                             {"jobs", std::to_string(jobs)},
                             {"trial", std::to_string(trial)}},
                            {{"recall", hurt.score.recall()},
                             {"precision", hurt.score.precision()},
                             {"truth_pairs",
                              static_cast<double>(
                                  hurt.score.truth_pairs)},
                             {"detected",
                              static_cast<double>(
                                  hurt.score.detected_pairs)},
                             {"reported",
                              static_cast<double>(
                                  hurt.score.reported_pairs)},
                             {"false_positives",
                              static_cast<double>(
                                  hurt.score.false_positives)}});
                    }
                }
            }
            std::printf("%-18s %7llu %8.3f %8.3f %10zu %4zu\n",
                        gw.workload.name.c_str(),
                        static_cast<unsigned long long>(period),
                        acc.recall(), acc.precision(), acc.truth_pairs,
                        acc.false_positives);
            period_acc.add({acc.truth_pairs, acc.detected_pairs,
                            acc.reported_pairs, acc.false_positives});
        }
        std::printf("%-18s %7llu %8.3f %8.3f %10zu %4zu\n\n",
                    "MEAN", static_cast<unsigned long long>(period),
                    period_acc.recall(), period_acc.precision(),
                    period_acc.truth_pairs,
                    period_acc.false_positives);
        mean_by_period.push_back(period_acc.recall());
    }

    bool ok = !any_crash;
    if (mean_by_period[0] < kRecallFloorAtPeriodOne) {
        std::fprintf(stderr,
                     "FAIL: recall %.3f at period 1 is below the %.2f "
                     "floor\n",
                     mean_by_period[0], kRecallFloorAtPeriodOne);
        ok = false;
    }
    for (size_t i = 1; i < mean_by_period.size(); ++i) {
        if (mean_by_period[i] >
            mean_by_period[i - 1] + kMonotonicSlack) {
            std::fprintf(
                stderr,
                "FAIL: recall rose from %.3f to %.3f between periods "
                "%llu and %llu — not a plausible degradation curve\n",
                mean_by_period[i - 1], mean_by_period[i],
                static_cast<unsigned long long>(kPeriods[i - 1]),
                static_cast<unsigned long long>(kPeriods[i]));
            ok = false;
        }
    }
    if (any_crash)
        std::fprintf(stderr, "FAIL: at least one analysis crashed\n");
    std::printf("%s\n", ok ? "floors OK" : "FLOOR VIOLATION");
    return ok ? 0 : 1;
}

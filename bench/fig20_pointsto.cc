/**
 * @file
 * Figure 20 (beyond the paper): what the Andersen points-to layer adds
 * on top of the stack-only escape prefilter of fig15 — heap-locality
 * event pruning, indirect-branch fan-out sharpening, and replay
 * constant recovery — with report identity asserted everywhere.
 *
 * For each subject the online phase runs once; the same trace is then
 * analyzed twice per trial, points-to on (`OfflineOptions::pointsto`)
 * and off (the `--no-pointsto` CLI path). Self-asserted CI floors
 * (exit 1 on violation, so the Release perf job gates on it):
 *   - the racy-pair set is byte-identical with points-to on and off on
 *     every subject, every workload of the full registry (small scale),
 *     and the full oracle battery including the sync-vocabulary half;
 *   - at least one heap-heavy subject prunes strictly MORE events with
 *     points-to on than its stack-only (points-to off) fig15 baseline,
 *     with a nonzero heap-local share;
 *   - on every subject with resolved indirect transfers, the summed
 *     sharp fan-out is strictly smaller than the blunt address-taken
 *     fan-out.
 *
 * `--json <path>` writes per-trial JSONL rows; `--jobs N` sets the
 * analysis thread count (default 2).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "bench_util.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "workload/registry.hh"

namespace {

using namespace prorace;

const char *const kSubjects[] = {"ptr-dispatch", "mpmc-queue",
                                 "event-loop", "pfscan"};
const char *const kHeapHeavy = "ptr-dispatch";
constexpr uint64_t kPeriod = 100;
constexpr uint64_t kSeed = 31;

struct OnOff {
    core::OfflineResult on;
    core::OfflineResult off;
};

OnOff
analyzeBoth(const asmkit::Program &program, const core::RunArtifacts &run,
            const core::OfflineOptions &base, unsigned jobs)
{
    core::OfflineOptions on = base;
    on.num_threads = jobs;
    on.static_prefilter = true;
    on.pointsto = true;
    core::OfflineOptions off = on;
    off.pointsto = false;

    OnOff r;
    core::ParallelOfflineAnalyzer a_on(program, on);
    r.on = a_on.analyze(run.trace);
    core::ParallelOfflineAnalyzer a_off(program, off);
    r.off = a_off.analyze(run.trace);
    return r;
}

bool
assertIdentical(const char *name, const OnOff &r)
{
    if (oracle::reportPairs(r.on.report) ==
        oracle::reportPairs(r.off.report)) {
        return true;
    }
    std::fprintf(stderr,
                 "FAIL: %s reports differ with points-to on (%zu races) "
                 "vs off (%zu)\n",
                 name, r.on.report.size(), r.off.report.size());
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    unsigned jobs = 2;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    }
    const int trials = bench::envTrials(3);
    const double scale = 0.05 * bench::envScale();

    bench::banner("Figure 20",
                  "Andersen points-to layer: heap-locality pruning over "
                  "the fig15 stack-only baseline, indirect fan-out "
                  "sharpening, constant recovery — report identity "
                  "asserted.");
    std::printf("jobs = %u, trials = %d, period = %llu\n\n", jobs, trials,
                static_cast<unsigned long long>(kPeriod));
    std::printf("%-14s %9s %9s %9s %9s %7s %7s %9s\n", "workload",
                "events", "pruned_on", "prunedoff", "heap", "ivals",
                "const", "fanout");

    bool ok = true;
    bool heap_floor_met = false;

    for (const char *name : kSubjects) {
        auto w = workload::findWorkload(name, scale);
        if (!w) {
            std::fprintf(stderr, "FAIL: unknown workload %s\n", name);
            ok = false;
            continue;
        }
        core::PipelineConfig pc =
            core::proRaceConfig(kPeriod, kSeed, w->pt_filter);
        core::RunArtifacts run =
            core::Session::run(*w->program, w->setup, pc.session);

        uint64_t events = 0, pruned_on = 0, pruned_off = 0;
        uint64_t pruned_heap = 0, intervals = 0, defeated = 0;
        uint64_t recovered_const = 0;
        for (int trial = 0; trial < trials; ++trial) {
            const OnOff r =
                analyzeBoth(*w->program, run, pc.offline, jobs);
            ok &= assertIdentical(name, r);
            events = r.on.prefilter.events_seen;
            pruned_on = r.on.prefilter.pruned();
            pruned_off = r.off.prefilter.pruned();
            pruned_heap = r.on.prefilter.pruned_heap;
            intervals = r.on.prefilter.heap_intervals;
            defeated = r.on.prefilter.heap_defeated;
            recovered_const = r.on.replay_stats.recovered_constant;
            if (r.off.replay_stats.recovered_constant != 0) {
                std::fprintf(stderr,
                             "FAIL: %s recovered constant accesses with "
                             "points-to off\n",
                             name);
                ok = false;
            }
            json.record(
                "fig20_pointsto",
                {{"workload", name},
                 {"jobs", std::to_string(jobs)},
                 {"trial", std::to_string(trial)}},
                {{"events", static_cast<double>(events)},
                 {"pruned_on", static_cast<double>(pruned_on)},
                 {"pruned_off", static_cast<double>(pruned_off)},
                 {"pruned_heap", static_cast<double>(pruned_heap)},
                 {"heap_intervals", static_cast<double>(intervals)},
                 {"heap_defeated", static_cast<double>(defeated)},
                 {"sites_heap_local",
                  static_cast<double>(r.on.prefilter.sites_heap_local)},
                 {"recovered_constant",
                  static_cast<double>(recovered_const)},
                 {"pointsto_objects",
                  static_cast<double>(r.on.prefilter.pointsto_objects)},
                 {"pointsto_constraints",
                  static_cast<double>(
                      r.on.prefilter.pointsto_constraints)},
                 {"pointsto_iterations",
                  static_cast<double>(
                      r.on.prefilter.pointsto_iterations)},
                 {"detect_on_s", r.on.detect_seconds},
                 {"detect_off_s", r.off.detect_seconds}});
        }

        // Static CFG sharpening: on subjects where the solver resolved
        // indirect sites, the per-site fan-out must strictly shrink.
        analysis::ProgramAnalysis pa(*w->program, true);
        const analysis::StaticSummary sum = pa.summary();
        const analysis::PointsToStats &pt = sum.pointsto;
        if (pt.resolved_indirect_sites > 0 &&
            pt.fanout_sharp >= pt.fanout_blunt) {
            std::fprintf(stderr,
                         "FAIL: %s resolved %llu indirect sites but the "
                         "sharp fan-out (%llu) did not shrink below the "
                         "blunt fan-out (%llu)\n",
                         name,
                         static_cast<unsigned long long>(
                             pt.resolved_indirect_sites),
                         static_cast<unsigned long long>(pt.fanout_sharp),
                         static_cast<unsigned long long>(
                             pt.fanout_blunt));
            ok = false;
        }

        if (std::strcmp(name, kHeapHeavy) == 0 &&
            pruned_on > pruned_off && pruned_heap > 0) {
            heap_floor_met = true;
        }

        char fanout[48];
        std::snprintf(fanout, sizeof(fanout), "%llu<%llu",
                      static_cast<unsigned long long>(pt.fanout_sharp),
                      static_cast<unsigned long long>(pt.fanout_blunt));
        std::printf("%-14s %9llu %9llu %9llu %9llu %7llu %7llu %9s\n",
                    name, static_cast<unsigned long long>(events),
                    static_cast<unsigned long long>(pruned_on),
                    static_cast<unsigned long long>(pruned_off),
                    static_cast<unsigned long long>(pruned_heap),
                    static_cast<unsigned long long>(intervals),
                    static_cast<unsigned long long>(recovered_const),
                    pt.resolved_indirect_sites ? fanout : "-");
    }

    // --- oracle batteries: identity must hold under planted races and
    // the full sync vocabulary ---
    std::printf("\noracle batteries (report identity, points-to on/off):\n");
    auto batteries = oracle::standardBattery(1078, 5);
    const auto sync_battery = oracle::syncBattery(1079, 5);
    batteries.insert(batteries.end(), sync_battery.begin(),
                     sync_battery.end());
    for (const oracle::GeneratorConfig &cfg : batteries) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc = core::proRaceConfig(
            kPeriod, kSeed + 13, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);
        const OnOff r =
            analyzeBoth(*gw.workload.program, run, pc.offline, jobs);
        const bool identical =
            assertIdentical(gw.workload.name.c_str(), r);
        ok &= identical;
        const oracle::OracleScore s_on =
            oracle::scoreReport(gw.truth, r.on.report);
        std::printf("  %-18s recall %.3f pruned %llu (heap %llu) %s\n",
                    gw.workload.name.c_str(), s_on.recall(),
                    static_cast<unsigned long long>(
                        r.on.prefilter.pruned()),
                    static_cast<unsigned long long>(
                        r.on.prefilter.pruned_heap),
                    identical ? "identical" : "DIFFER");
        json.record("fig20_pointsto",
                    {{"workload", gw.workload.name},
                     {"jobs", std::to_string(jobs)},
                     {"trial", "oracle"}},
                    {{"pruned", static_cast<double>(
                                    r.on.prefilter.pruned())},
                     {"pruned_heap", static_cast<double>(
                                         r.on.prefilter.pruned_heap)},
                     {"recall_on", s_on.recall()},
                     {"identical", identical ? 1.0 : 0.0}});
    }

    // --- full registry sweep at reduced scale: identity everywhere ---
    std::printf("\nregistry sweep (report identity at scale 0.02):\n");
    unsigned swept = 0;
    for (const std::string &name : workload::allWorkloadNames()) {
        auto w = workload::findWorkload(name, 0.02 * bench::envScale());
        if (!w)
            continue;
        core::PipelineConfig pc =
            core::proRaceConfig(kPeriod, kSeed + 17, w->pt_filter);
        core::RunArtifacts run =
            core::Session::run(*w->program, w->setup, pc.session);
        const OnOff r = analyzeBoth(*w->program, run, pc.offline, jobs);
        ok &= assertIdentical(name.c_str(), r);
        ++swept;
    }
    std::printf("  %u workloads, all identical: %s\n", swept,
                ok ? "yes" : "NO");

    if (!heap_floor_met) {
        std::fprintf(stderr,
                     "FAIL: heap-heavy subject %s did not prune strictly "
                     "more events than its stack-only baseline\n",
                     kHeapHeavy);
        ok = false;
    }
    std::printf("\n%s\n", ok ? "floors OK" : "FLOOR VIOLATION");
    return ok ? 0 : 1;
}

/**
 * @file
 * Regenerates Figure 9: trace generation rate for the real-application
 * models. Rates are far below PARSEC's because these subjects retire
 * memory operations at a much lower rate (I/O waits dominate).
 *
 * Paper geomeans (MB/s): 99.5 @10, 40.8 @100, 7.9 @1K, 1.2 @10K,
 * 0.2 @100K.
 */

#include "bench_util.hh"
#include "overhead_common.hh"
#include "workload/apps.hh"

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    bench::banner("Figure 9",
                  "Trace size (MB/s), real-application models, ProRace "
                  "driver.");
    auto suite = workload::realAppWorkloads(bench::envScale());
    bench::traceSizeSweep(suite, &json, "fig09_realapps_tracesize");
    std::printf("\npaper geomeans (MB/s): 99.5 @10, 40.8 @100, 7.9 @1K, "
                "1.2 @10K, 0.2 @100K\n");
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the pipeline's components: VM
 * interpretation rate, PT encode/decode throughput, sample alignment,
 * replay throughput, and FastTrack event throughput.
 */

#include <atomic>

#include <benchmark/benchmark.h>

#include "core/parallel_offline.hh"
#include "core/session.hh"
#include "detect/fasttrack.hh"
#include "exec/executor.hh"
#include "exec/reorder_buffer.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"
#include "workload/apps.hh"

namespace {

using namespace prorace;

workload::Workload &
benchApp()
{
    static workload::Workload w = [] {
        workload::AppProfile p;
        p.name = "bench-app";
        p.items = 120;
        p.compute_iters = 80;
        p.sweep_elems = 40;
        p.chase_steps = 10;
        return workload::makeAppWorkload(p);
    }();
    return w;
}

core::RunArtifacts &
benchRun()
{
    static core::RunArtifacts run = [] {
        auto &w = benchApp();
        core::SessionOptions opt;
        opt.machine.seed = 9;
        opt.run_baseline = false;
        opt.tracing.pebs_period = 200;
        opt.tracing.pt.filter = w.pt_filter;
        return core::Session::run(*w.program, w.setup, opt);
    }();
    return run;
}

void
BM_MachineInterpret(benchmark::State &state)
{
    auto &w = benchApp();
    uint64_t insns = 0;
    for (auto _ : state) {
        vm::MachineConfig cfg;
        cfg.seed = 3;
        vm::Machine m(*w.program, cfg);
        w.setup(m);
        m.run();
        insns += m.totalInstructions();
    }
    state.counters["insn/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpret)->Unit(benchmark::kMillisecond);

void
BM_MachineInterpretTraced(benchmark::State &state)
{
    auto &w = benchApp();
    uint64_t insns = 0;
    for (auto _ : state) {
        vm::MachineConfig cfg;
        cfg.seed = 3;
        driver::TraceConfig tcfg;
        tcfg.pebs_period = 200;
        tcfg.pt.filter = w.pt_filter;
        vm::Machine m(*w.program, cfg);
        driver::TracingSession tracing(tcfg, cfg.num_cores);
        m.setObserver(&tracing);
        w.setup(m);
        m.run();
        benchmark::DoNotOptimize(tracing.finish());
        insns += m.totalInstructions();
    }
    state.counters["insn/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpretTraced)->Unit(benchmark::kMillisecond);

void
BM_PtDecode(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    uint64_t entries = 0;
    for (auto _ : state) {
        pmu::PtDecodeStats stats;
        auto paths =
            pmu::decodePt(*w.program, w.pt_filter, run.trace, &stats);
        benchmark::DoNotOptimize(paths);
        entries += stats.path_entries;
    }
    state.counters["entries/s"] = benchmark::Counter(
        static_cast<double>(entries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PtDecode)->Unit(benchmark::kMillisecond);

void
BM_AlignSamples(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    for (auto _ : state) {
        auto aligns = replay::alignTrace(*w.program, paths, run.trace);
        benchmark::DoNotOptimize(aligns);
    }
}
BENCHMARK(BM_AlignSamples)->Unit(benchmark::kMillisecond);

void
BM_Replay(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    auto aligns = replay::alignTrace(*w.program, paths, run.trace);
    uint64_t accesses = 0;
    for (auto _ : state) {
        replay::Replayer rep(*w.program, {});
        auto out = rep.replayAll(paths, aligns, run.trace);
        accesses += out.size();
        benchmark::DoNotOptimize(out);
    }
    state.counters["accesses/s"] = benchmark::Counter(
        static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Replay)->Unit(benchmark::kMillisecond);

void
BM_FastTrack(benchmark::State &state)
{
    // A synthetic stream: 4 threads, mixed reads/writes over 1K
    // variables with periodic lock handoffs.
    Rng rng(11);
    std::vector<detect::MemAccess> stream;
    for (int i = 0; i < 100000; ++i) {
        detect::MemAccess ma;
        ma.tid = static_cast<uint32_t>(rng.below(4));
        ma.addr = 0x10000 + 8 * rng.below(1024);
        ma.is_write = rng.chance(0.3);
        ma.insn_index = static_cast<uint32_t>(rng.below(500));
        stream.push_back(ma);
    }
    uint64_t events = 0;
    for (auto _ : state) {
        detect::FastTrack ft;
        for (size_t i = 0; i < stream.size(); ++i) {
            if (i % 64 == 0) {
                ft.acquire(stream[i].tid, 0x9000);
                ft.release(stream[i].tid, 0x9000);
            }
            ft.access(stream[i]);
        }
        events += stream.size();
        benchmark::DoNotOptimize(ft.report().size());
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastTrack)->Unit(benchmark::kMillisecond);

void
BM_ExecutorSubmit(benchmark::State &state)
{
    // Raw task dispatch rate: trivial tasks, measuring submit + wakeup +
    // future-resolution overhead per task on N workers.
    const unsigned threads = static_cast<unsigned>(state.range(0));
    uint64_t tasks = 0;
    for (auto _ : state) {
        exec::Executor ex(threads);
        std::atomic<uint64_t> sum{0};
        std::vector<exec::Future<void>> futures;
        constexpr int kTasks = 4096;
        futures.reserve(kTasks);
        for (int i = 0; i < kTasks; ++i) {
            futures.push_back(ex.submit(
                [&sum, i] { sum.fetch_add(static_cast<uint64_t>(i),
                                          std::memory_order_relaxed); }));
        }
        for (auto &f : futures)
            f.get();
        benchmark::DoNotOptimize(sum.load());
        tasks += kTasks;
    }
    state.counters["tasks/s"] = benchmark::Counter(
        static_cast<double>(tasks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutorSubmit)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ReorderBufferCommit(benchmark::State &state)
{
    // Ordered-commit throughput: workers commit out of order, one
    // consumer drains in sequence order.
    uint64_t items = 0;
    for (auto _ : state) {
        constexpr uint64_t kItems = 4096;
        exec::Executor ex(2);
        exec::ReorderBuffer<uint64_t> rob(64);
        uint64_t submitted = 0;
        auto submit_one = [&] {
            const uint64_t seq = submitted++;
            ex.submit([&rob, seq] { rob.commit(seq, seq * 3); });
        };
        while (submitted < 64)
            submit_one();
        uint64_t total = 0;
        for (uint64_t seq = 0; seq < kItems; ++seq) {
            total += rob.pop();
            if (submitted < kItems)
                submit_one();
        }
        benchmark::DoNotOptimize(total);
        items += kItems;
    }
    state.counters["commits/s"] = benchmark::Counter(
        static_cast<double>(items), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReorderBufferCommit)->Unit(benchmark::kMillisecond);

void
BM_ParallelOffline(benchmark::State &state)
{
    // Whole offline pipeline through the parallel analyzer (arg = jobs;
    // 0 exercises the serial delegation path for comparison).
    auto &run = benchRun();
    auto &w = benchApp();
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    uint64_t events = 0;
    for (auto _ : state) {
        core::OfflineOptions opt;
        opt.pt_filter = w.pt_filter;
        opt.num_threads = jobs;
        core::ParallelOfflineAnalyzer analyzer(*w.program, opt);
        core::OfflineResult result = analyzer.analyze(run.trace);
        events += result.extended_trace_events;
        benchmark::DoNotOptimize(result);
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelOffline)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_TraceSerialize(benchmark::State &state)
{
    auto &run = benchRun();
    uint64_t bytes = 0;
    for (auto _ : state) {
        auto buf = trace::serializeTrace(run.trace);
        bytes += buf.size();
        benchmark::DoNotOptimize(buf);
    }
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSerialize)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

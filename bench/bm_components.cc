/**
 * @file
 * google-benchmark microbenchmarks of the pipeline's components: VM
 * interpretation rate, PT encode/decode throughput, sample alignment,
 * replay throughput, and FastTrack event throughput.
 */

#include <atomic>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/parallel_offline.hh"
#include "core/session.hh"
#include "detect/fasttrack.hh"
#include "detect/fasttrack_ref.hh"
#include "exec/executor.hh"
#include "exec/reorder_buffer.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/byte_map_model.hh"
#include "replay/program_map.hh"
#include "replay/replayer.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"
#include "workload/apps.hh"

namespace {

using namespace prorace;

workload::Workload &
benchApp()
{
    static workload::Workload w = [] {
        workload::AppProfile p;
        p.name = "bench-app";
        p.items = 120;
        p.compute_iters = 80;
        p.sweep_elems = 40;
        p.chase_steps = 10;
        return workload::makeAppWorkload(p);
    }();
    return w;
}

core::RunArtifacts &
benchRun()
{
    static core::RunArtifacts run = [] {
        auto &w = benchApp();
        core::SessionOptions opt;
        opt.machine.seed = 9;
        opt.run_baseline = false;
        opt.tracing.pebs_period = 200;
        opt.tracing.pt.filter = w.pt_filter;
        return core::Session::run(*w.program, w.setup, opt);
    }();
    return run;
}

void
BM_MachineInterpret(benchmark::State &state)
{
    auto &w = benchApp();
    uint64_t insns = 0;
    for (auto _ : state) {
        vm::MachineConfig cfg;
        cfg.seed = 3;
        vm::Machine m(*w.program, cfg);
        w.setup(m);
        m.run();
        insns += m.totalInstructions();
    }
    state.counters["insn/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpret)->Unit(benchmark::kMillisecond);

void
BM_MachineInterpretTraced(benchmark::State &state)
{
    auto &w = benchApp();
    uint64_t insns = 0;
    for (auto _ : state) {
        vm::MachineConfig cfg;
        cfg.seed = 3;
        driver::TraceConfig tcfg;
        tcfg.pebs_period = 200;
        tcfg.pt.filter = w.pt_filter;
        vm::Machine m(*w.program, cfg);
        driver::TracingSession tracing(tcfg, cfg.num_cores);
        m.setObserver(&tracing);
        w.setup(m);
        m.run();
        benchmark::DoNotOptimize(tracing.finish());
        insns += m.totalInstructions();
    }
    state.counters["insn/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpretTraced)->Unit(benchmark::kMillisecond);

void
BM_PtDecode(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    uint64_t entries = 0;
    for (auto _ : state) {
        pmu::PtDecodeStats stats;
        auto paths =
            pmu::decodePt(*w.program, w.pt_filter, run.trace, &stats);
        benchmark::DoNotOptimize(paths);
        entries += stats.path_entries;
    }
    state.counters["entries/s"] = benchmark::Counter(
        static_cast<double>(entries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PtDecode)->Unit(benchmark::kMillisecond);

void
BM_AlignSamples(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    for (auto _ : state) {
        auto aligns = replay::alignTrace(*w.program, paths, run.trace);
        benchmark::DoNotOptimize(aligns);
    }
}
BENCHMARK(BM_AlignSamples)->Unit(benchmark::kMillisecond);

void
BM_Replay(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    auto aligns = replay::alignTrace(*w.program, paths, run.trace);
    uint64_t accesses = 0;
    for (auto _ : state) {
        replay::Replayer rep(*w.program, {});
        auto out = rep.replayAll(paths, aligns, run.trace);
        accesses += out.size();
        benchmark::DoNotOptimize(out);
    }
    state.counters["accesses/s"] = benchmark::Counter(
        static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Replay)->Unit(benchmark::kMillisecond);

void
BM_FastTrack(benchmark::State &state)
{
    // A synthetic stream: 4 threads, mixed reads/writes over 1K
    // variables with periodic lock handoffs.
    Rng rng(11);
    std::vector<detect::MemAccess> stream;
    for (int i = 0; i < 100000; ++i) {
        detect::MemAccess ma;
        ma.tid = static_cast<uint32_t>(rng.below(4));
        ma.addr = 0x10000 + 8 * rng.below(1024);
        ma.is_write = rng.chance(0.3);
        ma.insn_index = static_cast<uint32_t>(rng.below(500));
        stream.push_back(ma);
    }
    uint64_t events = 0;
    for (auto _ : state) {
        detect::FastTrack ft;
        for (size_t i = 0; i < stream.size(); ++i) {
            if (i % 64 == 0) {
                ft.acquire(stream[i].tid, 0x9000);
                ft.release(stream[i].tid, 0x9000);
            }
            ft.access(stream[i]);
        }
        events += stream.size();
        benchmark::DoNotOptimize(ft.report().size());
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastTrack)->Unit(benchmark::kMillisecond);

// --- shadow-memory microbenchmarks (paged ProgramMap vs byte map) ---
//
// Each benchmark runs the same aligned 8-byte store+load mix over both
// the paged shadow (replay::ProgramMap) and the pre-overhaul
// byte-granular model (replay::ByteMapModel), with an invalidateMemory
// sweep every 16 Ki operations the way regeneration rounds bulk-reset
// emulated memory. Acceptance: the paged shadow wins the random-access
// pattern by >= 2x.

/** Address streams shared by the ProgramMap/ByteMap benchmark pairs. */
const std::vector<uint64_t> &
shadowAddressStream(int pattern)
{
    // 16 Ki slots * 8 B = a 128 KiB working set spanning 32 shadow pages.
    constexpr uint64_t kSlots = 1 << 14;
    constexpr uint64_t kBase = 0x100000;
    constexpr size_t kOps = 1 << 16;
    static const std::vector<uint64_t> streams[3] = {
        [] { // sequential: a warm linear walk
            std::vector<uint64_t> v(kOps);
            for (size_t i = 0; i < v.size(); ++i)
                v[i] = kBase + 8 * (i % kSlots);
            return v;
        }(),
        [] { // strided: page-crossing stride (4 KiB + 8)
            std::vector<uint64_t> v(kOps);
            uint64_t off = 0;
            for (size_t i = 0; i < v.size(); ++i) {
                v[i] = kBase + off;
                off = (off + 4096 + 8) % (8 * kSlots);
            }
            return v;
        }(),
        [] { // random: uniform over the working set
            std::vector<uint64_t> v(kOps);
            Rng rng(5);
            for (auto &a : v)
                a = kBase + 8 * rng.below(kSlots);
            return v;
        }(),
    };
    return streams[pattern];
}

template <typename Shadow>
void
runShadowBench(benchmark::State &state)
{
    const std::vector<uint64_t> &addrs =
        shadowAddressStream(static_cast<int>(state.range(0)));
    uint64_t ops = 0;
    for (auto _ : state) {
        Shadow shadow;
        uint64_t sink = 0;
        for (size_t i = 0; i < addrs.size(); ++i) {
            if ((i & 0x3fff) == 0x3fff)
                shadow.invalidateMemory();
            shadow.writeMem(addrs[i], i, 8);
            // Load a nearby earlier slot: mostly hits, some misses.
            if (auto v = shadow.readMem(addrs[i ? i - 1 : 0], 8))
                sink += *v;
        }
        benchmark::DoNotOptimize(sink);
        ops += addrs.size() * 2;
    }
    state.counters["ops/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void
BM_ProgramMapShadow(benchmark::State &state)
{
    runShadowBench<replay::ProgramMap>(state);
}
BENCHMARK(BM_ProgramMapShadow)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"pattern"})
    ->Unit(benchmark::kMillisecond);

void
BM_ByteMapShadow(benchmark::State &state)
{
    runShadowBench<replay::ByteMapModel>(state);
}
BENCHMARK(BM_ByteMapShadow)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgNames({"pattern"})
    ->Unit(benchmark::kMillisecond);

// --- detector microbenchmarks (flat FastTrack vs reference) ---
//
// A shared-read-heavy stream: 8 threads hammer 512 variables with 2%
// writes and periodic lock handoffs, so most granules inflate to
// read-share vector clocks and the inner loop is dominated by shadow
// lookups + clock updates. Acceptance: the flat detector wins >= 1.5x.

const std::vector<detect::MemAccess> &
sharedReadStream()
{
    static const std::vector<detect::MemAccess> stream = [] {
        Rng rng(17);
        std::vector<detect::MemAccess> v;
        v.reserve(200000);
        for (int i = 0; i < 200000; ++i) {
            detect::MemAccess ma;
            ma.tid = static_cast<uint32_t>(rng.below(8));
            ma.addr = 0x10000 + 8 * rng.below(512);
            ma.is_write = rng.chance(0.02);
            ma.insn_index = static_cast<uint32_t>(rng.below(500));
            v.push_back(ma);
        }
        return v;
    }();
    return stream;
}

template <typename Detector>
void
runSharedReadBench(benchmark::State &state)
{
    const auto &stream = sharedReadStream();
    uint64_t events = 0;
    for (auto _ : state) {
        Detector ft;
        for (size_t i = 0; i < stream.size(); ++i) {
            if (i % 256 == 0) {
                ft.acquire(stream[i].tid, 0x9000);
                ft.release(stream[i].tid, 0x9000);
            }
            ft.access(stream[i]);
        }
        events += stream.size();
        benchmark::DoNotOptimize(ft.report().size());
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}

void
BM_FastTrackSharedRead(benchmark::State &state)
{
    runSharedReadBench<detect::FastTrack>(state);
}
BENCHMARK(BM_FastTrackSharedRead)->Unit(benchmark::kMillisecond);

void
BM_RefFastTrackSharedRead(benchmark::State &state)
{
    runSharedReadBench<detect::RefFastTrack>(state);
}
BENCHMARK(BM_RefFastTrackSharedRead)->Unit(benchmark::kMillisecond);

void
BM_ExecutorSubmit(benchmark::State &state)
{
    // Raw task dispatch rate: trivial tasks, measuring submit + wakeup +
    // future-resolution overhead per task on N workers.
    const unsigned threads = static_cast<unsigned>(state.range(0));
    uint64_t tasks = 0;
    for (auto _ : state) {
        exec::Executor ex(threads);
        std::atomic<uint64_t> sum{0};
        std::vector<exec::Future<void>> futures;
        constexpr int kTasks = 4096;
        futures.reserve(kTasks);
        for (int i = 0; i < kTasks; ++i) {
            futures.push_back(ex.submit(
                [&sum, i] { sum.fetch_add(static_cast<uint64_t>(i),
                                          std::memory_order_relaxed); }));
        }
        for (auto &f : futures)
            f.get();
        benchmark::DoNotOptimize(sum.load());
        tasks += kTasks;
    }
    state.counters["tasks/s"] = benchmark::Counter(
        static_cast<double>(tasks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutorSubmit)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ReorderBufferCommit(benchmark::State &state)
{
    // Ordered-commit throughput: workers commit out of order, one
    // consumer drains in sequence order.
    uint64_t items = 0;
    for (auto _ : state) {
        constexpr uint64_t kItems = 4096;
        exec::Executor ex(2);
        exec::ReorderBuffer<uint64_t> rob(64);
        uint64_t submitted = 0;
        auto submit_one = [&] {
            const uint64_t seq = submitted++;
            ex.submit([&rob, seq] { rob.commit(seq, seq * 3); });
        };
        while (submitted < 64)
            submit_one();
        uint64_t total = 0;
        for (uint64_t seq = 0; seq < kItems; ++seq) {
            total += rob.pop();
            if (submitted < kItems)
                submit_one();
        }
        benchmark::DoNotOptimize(total);
        items += kItems;
    }
    state.counters["commits/s"] = benchmark::Counter(
        static_cast<double>(items), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReorderBufferCommit)->Unit(benchmark::kMillisecond);

void
BM_ParallelOffline(benchmark::State &state)
{
    // Whole offline pipeline through the parallel analyzer (arg = jobs;
    // 0 exercises the serial delegation path for comparison).
    auto &run = benchRun();
    auto &w = benchApp();
    const unsigned jobs = static_cast<unsigned>(state.range(0));
    uint64_t events = 0;
    for (auto _ : state) {
        core::OfflineOptions opt;
        opt.pt_filter = w.pt_filter;
        opt.num_threads = jobs;
        core::ParallelOfflineAnalyzer analyzer(*w.program, opt);
        core::OfflineResult result = analyzer.analyze(run.trace);
        events += result.extended_trace_events;
        benchmark::DoNotOptimize(result);
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelOffline)->Arg(0)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_TraceSerialize(benchmark::State &state)
{
    auto &run = benchRun();
    uint64_t bytes = 0;
    for (auto _ : state) {
        auto buf = trace::serializeTrace(run.trace);
        bytes += buf.size();
        benchmark::DoNotOptimize(buf);
    }
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSerialize)->Unit(benchmark::kMillisecond);

} // namespace

/**
 * Like BENCHMARK_MAIN(), plus the repo-wide `--json <path>` convention
 * (bench_util.hh): it is translated to google-benchmark's
 * --benchmark_out/--benchmark_out_format pair so the CI perf job can
 * invoke every bench binary uniformly.
 */
int
main(int argc, char **argv)
{
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag;
    std::string fmt_flag = "--benchmark_out_format=json";
    for (size_t i = 1; i < args.size(); ++i) {
        if (std::string(args[i]) == "--json" && i + 1 < args.size()) {
            out_flag =
                std::string("--benchmark_out=") + args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            break;
        }
    }
    if (!out_flag.empty()) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int argn = static_cast<int>(args.size());
    benchmark::Initialize(&argn, args.data());
    if (benchmark::ReportUnrecognizedArguments(argn, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks of the pipeline's components: VM
 * interpretation rate, PT encode/decode throughput, sample alignment,
 * replay throughput, and FastTrack event throughput.
 */

#include <benchmark/benchmark.h>

#include "core/session.hh"
#include "detect/fasttrack.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"
#include "workload/apps.hh"

namespace {

using namespace prorace;

workload::Workload &
benchApp()
{
    static workload::Workload w = [] {
        workload::AppProfile p;
        p.name = "bench-app";
        p.items = 120;
        p.compute_iters = 80;
        p.sweep_elems = 40;
        p.chase_steps = 10;
        return workload::makeAppWorkload(p);
    }();
    return w;
}

core::RunArtifacts &
benchRun()
{
    static core::RunArtifacts run = [] {
        auto &w = benchApp();
        core::SessionOptions opt;
        opt.machine.seed = 9;
        opt.run_baseline = false;
        opt.tracing.pebs_period = 200;
        opt.tracing.pt.filter = w.pt_filter;
        return core::Session::run(*w.program, w.setup, opt);
    }();
    return run;
}

void
BM_MachineInterpret(benchmark::State &state)
{
    auto &w = benchApp();
    uint64_t insns = 0;
    for (auto _ : state) {
        vm::MachineConfig cfg;
        cfg.seed = 3;
        vm::Machine m(*w.program, cfg);
        w.setup(m);
        m.run();
        insns += m.totalInstructions();
    }
    state.counters["insn/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpret)->Unit(benchmark::kMillisecond);

void
BM_MachineInterpretTraced(benchmark::State &state)
{
    auto &w = benchApp();
    uint64_t insns = 0;
    for (auto _ : state) {
        vm::MachineConfig cfg;
        cfg.seed = 3;
        driver::TraceConfig tcfg;
        tcfg.pebs_period = 200;
        tcfg.pt.filter = w.pt_filter;
        vm::Machine m(*w.program, cfg);
        driver::TracingSession tracing(tcfg, cfg.num_cores);
        m.setObserver(&tracing);
        w.setup(m);
        m.run();
        benchmark::DoNotOptimize(tracing.finish());
        insns += m.totalInstructions();
    }
    state.counters["insn/s"] = benchmark::Counter(
        static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineInterpretTraced)->Unit(benchmark::kMillisecond);

void
BM_PtDecode(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    uint64_t entries = 0;
    for (auto _ : state) {
        pmu::PtDecodeStats stats;
        auto paths =
            pmu::decodePt(*w.program, w.pt_filter, run.trace, &stats);
        benchmark::DoNotOptimize(paths);
        entries += stats.path_entries;
    }
    state.counters["entries/s"] = benchmark::Counter(
        static_cast<double>(entries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PtDecode)->Unit(benchmark::kMillisecond);

void
BM_AlignSamples(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    for (auto _ : state) {
        auto aligns = replay::alignTrace(*w.program, paths, run.trace);
        benchmark::DoNotOptimize(aligns);
    }
}
BENCHMARK(BM_AlignSamples)->Unit(benchmark::kMillisecond);

void
BM_Replay(benchmark::State &state)
{
    auto &run = benchRun();
    auto &w = benchApp();
    auto paths = pmu::decodePt(*w.program, w.pt_filter, run.trace);
    auto aligns = replay::alignTrace(*w.program, paths, run.trace);
    uint64_t accesses = 0;
    for (auto _ : state) {
        replay::Replayer rep(*w.program, {});
        auto out = rep.replayAll(paths, aligns, run.trace);
        accesses += out.size();
        benchmark::DoNotOptimize(out);
    }
    state.counters["accesses/s"] = benchmark::Counter(
        static_cast<double>(accesses), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Replay)->Unit(benchmark::kMillisecond);

void
BM_FastTrack(benchmark::State &state)
{
    // A synthetic stream: 4 threads, mixed reads/writes over 1K
    // variables with periodic lock handoffs.
    Rng rng(11);
    std::vector<detect::MemAccess> stream;
    for (int i = 0; i < 100000; ++i) {
        detect::MemAccess ma;
        ma.tid = static_cast<uint32_t>(rng.below(4));
        ma.addr = 0x10000 + 8 * rng.below(1024);
        ma.is_write = rng.chance(0.3);
        ma.insn_index = static_cast<uint32_t>(rng.below(500));
        stream.push_back(ma);
    }
    uint64_t events = 0;
    for (auto _ : state) {
        detect::FastTrack ft;
        for (size_t i = 0; i < stream.size(); ++i) {
            if (i % 64 == 0) {
                ft.acquire(stream[i].tid, 0x9000);
                ft.release(stream[i].tid, 0x9000);
            }
            ft.access(stream[i]);
        }
        events += stream.size();
        benchmark::DoNotOptimize(ft.report().size());
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastTrack)->Unit(benchmark::kMillisecond);

void
BM_TraceSerialize(benchmark::State &state)
{
    auto &run = benchRun();
    uint64_t bytes = 0;
    for (auto _ : state) {
        auto buf = trace::serializeTrace(run.trace);
        bytes += buf.size();
        benchmark::DoNotOptimize(buf);
    }
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSerialize)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

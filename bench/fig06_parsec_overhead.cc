/**
 * @file
 * Regenerates Figure 6: ProRace runtime overhead on the PARSEC suite
 * across PEBS sampling periods 10..100K, plus the §7.2 overhead
 * breakdown (PEBS vs PT vs synchronization tracing).
 *
 * Paper reference points (geomean): 4% @100K, 7% @10K, 31% @1K,
 * 2.85x @100, 7.52x @10.
 */

#include "bench_util.hh"
#include "overhead_common.hh"
#include "workload/apps.hh"

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    bench::banner("Figure 6 (+ §7.2 breakdown)",
                  "Runtime overhead, PARSEC-model suite, ProRace driver, "
                  "4 worker threads.");
    auto suite = workload::parsecWorkloads(bench::envScale());
    bench::overheadSweep(suite, driver::DriverKind::kProRace,
                         /*print_breakdown=*/true, &json,
                         "fig06_parsec_overhead");
    std::printf("\npaper geomeans:       7.52x       2.85x       31%%"
                "          7%%          4%%\n");
    return 0;
}

/**
 * @file
 * Shared driver for the runtime-overhead and trace-size sweeps
 * (Figures 6-10): run each workload untraced and traced across the
 * paper's sampling periods and collect overhead / trace-rate numbers.
 */

#ifndef PRORACE_BENCH_OVERHEAD_COMMON_HH
#define PRORACE_BENCH_OVERHEAD_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/session.hh"
#include "support/stats.hh"
#include "workload/workload.hh"

namespace prorace::bench {

/** One workload at one period. */
struct SweepPoint {
    double overhead = 0;        ///< traced/baseline - 1
    double mb_per_s = 0;        ///< committed trace rate
    double pebs_share_cycles = 0; ///< PEBS share of tracing cycles
    double pt_share_cycles = 0;
    double sync_share_cycles = 0;
    uint64_t samples = 0;
    uint64_t dropped = 0;
};

/** Run one workload under one driver/period configuration. */
inline SweepPoint
runPoint(const workload::Workload &w, uint64_t period,
         driver::DriverKind driver, uint64_t seed = 17)
{
    core::SessionOptions opt;
    opt.machine.seed = seed;
    opt.run_baseline = true;
    opt.tracing.pebs_period = period;
    opt.tracing.driver = driver;
    opt.tracing.seed = seed ^ 0xabcdef;
    opt.tracing.pt.filter = w.pt_filter;
    core::RunArtifacts run = core::Session::run(*w.program, w.setup, opt);

    SweepPoint p;
    p.overhead = run.overhead();
    p.mb_per_s = run.traceMBPerSecond();
    const double total =
        static_cast<double>(run.stats.totalCycles()) + 1e-9;
    p.pebs_share_cycles = static_cast<double>(run.stats.pebs_cycles) / total;
    p.pt_share_cycles = static_cast<double>(run.stats.pt_cycles) / total;
    p.sync_share_cycles =
        static_cast<double>(run.stats.sync_cycles) / total;
    p.samples = run.stats.samples_taken;
    p.dropped = run.stats.samplesDropped();
    return p;
}

/** Print a full overhead sweep (one row per app, one column per period). */
inline void
overheadSweep(const std::vector<workload::Workload> &suite,
              driver::DriverKind driver, bool print_breakdown,
              JsonReporter *json = nullptr,
              const char *bench_name = "overhead")
{
    const auto &periods = paperPeriods();
    std::printf("%-14s", "app");
    for (uint64_t p : periods)
        std::printf("%12s", ("P=" + std::to_string(p)).c_str());
    std::printf("\n");

    std::vector<std::vector<double>> ratios(periods.size());
    std::vector<SweepPoint> breakdown_points;
    for (const auto &w : suite) {
        std::printf("%-14s", w.name.c_str());
        for (size_t i = 0; i < periods.size(); ++i) {
            const SweepPoint p = runPoint(w, periods[i], driver);
            ratios[i].push_back(1.0 + p.overhead);
            std::printf("%12s", formatOverhead(p.overhead).c_str());
            if (print_breakdown && periods[i] == 10000)
                breakdown_points.push_back(p);
            if (json) {
                json->record(
                    bench_name,
                    {{"app", w.name},
                     {"period", std::to_string(periods[i])},
                     {"driver", driverName(driver)}},
                    {{"overhead", p.overhead},
                     {"mb_per_s", p.mb_per_s},
                     {"samples", static_cast<double>(p.samples)},
                     {"dropped", static_cast<double>(p.dropped)}});
            }
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("%-14s", "geomean");
    for (size_t i = 0; i < periods.size(); ++i)
        std::printf("%12s", formatOverhead(geomean(ratios[i]) - 1).c_str());
    std::printf("\n");

    if (print_breakdown) {
        double pebs = 0, pt = 0, sync = 0;
        for (const SweepPoint &p : breakdown_points) {
            pebs += p.pebs_share_cycles;
            pt += p.pt_share_cycles;
            sync += p.sync_share_cycles;
        }
        const double n = static_cast<double>(breakdown_points.size());
        std::printf("\nTracing-overhead breakdown at P=10000 (paper "
                    "§7.2: PEBS dominates at 97-99%%):\n"
                    "  PEBS %.1f%%   PT %.1f%%   sync %.1f%%\n",
                    100 * pebs / n, 100 * pt / n, 100 * sync / n);
    }
}

/** Print a trace-size sweep in MB/s (one row per app). */
inline void
traceSizeSweep(const std::vector<workload::Workload> &suite,
               JsonReporter *json = nullptr,
               const char *bench_name = "tracesize")
{
    const auto &periods = paperPeriods();
    std::printf("%-14s", "app");
    for (uint64_t p : periods)
        std::printf("%12s", ("P=" + std::to_string(p)).c_str());
    std::printf("%12s\n", "drops@10");

    std::vector<std::vector<double>> rates(periods.size());
    for (const auto &w : suite) {
        std::printf("%-14s", w.name.c_str());
        uint64_t drops_at_10 = 0;
        for (size_t i = 0; i < periods.size(); ++i) {
            const SweepPoint p =
                runPoint(w, periods[i], driver::DriverKind::kProRace);
            rates[i].push_back(std::max(p.mb_per_s, 1e-3));
            std::printf("%12s", formatDouble(p.mb_per_s, 1).c_str());
            if (periods[i] == 10)
                drops_at_10 = p.dropped;
            if (json) {
                json->record(bench_name,
                             {{"app", w.name},
                              {"period", std::to_string(periods[i])}},
                             {{"mb_per_s", p.mb_per_s},
                              {"dropped",
                               static_cast<double>(p.dropped)}});
            }
            std::fflush(stdout);
        }
        std::printf("%12llu\n",
                    static_cast<unsigned long long>(drops_at_10));
    }
    std::printf("%-14s", "geomean");
    for (size_t i = 0; i < periods.size(); ++i)
        std::printf("%12s", formatDouble(geomean(rates[i]), 1).c_str());
    std::printf("\n");
}

} // namespace prorace::bench

#endif // PRORACE_BENCH_OVERHEAD_COMMON_HH

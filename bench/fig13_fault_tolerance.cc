/**
 * @file
 * Figure 13 (beyond the paper): race-report recall under trace
 * corruption — the degradation curve of the fault-tolerant ingestion
 * layer.
 *
 * Each subject is traced once (period 10000, fixed seed), analyzed
 * clean for the baseline race set, then re-analyzed from deterministic
 * seeded corruptions of the serialized trace at increasing rates:
 *
 *   segflip   each segment takes one random bit flip w.p. rate
 *   segdrop   each segment is removed outright w.p. rate
 *   truncate  the file loses its trailing `rate` fraction of bytes
 *
 * Recall = |detected ∩ baseline| / |baseline| on deduplicated
 * instruction pairs. Every analysis runs under try/catch: any escaped
 * exception is a harness failure — corruption must degrade results,
 * never crash the analyzer. The harness also self-asserts the CI
 * floor: mean recall >= 0.9 for segment corruption (segflip+segdrop)
 * at rates <= 1%. `--json <path>` writes per-trial JSONL; `--jobs N`
 * sets analysis threads (default 2, so sharded decode and window
 * quarantine run under damage too).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "fault_injection.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"
#include "workload/racybugs.hh"

namespace {

using namespace prorace;

const char *kSubjects[] = {"apache-25520",  "mysql-3596",
                           "cherokee-0.9.2", "pbzip2-0.9.5", "pfscan",
                           "aget-bug2"};

const double kRates[] = {0.0, 0.005, 0.01, 0.02, 0.05};

/** The CI floor: mean segment-corruption recall at rates <= this. */
constexpr double kFloorMaxRate = 0.01;
constexpr double kRecallFloor = 0.9;

using RacePairs = std::set<std::pair<uint32_t, uint32_t>>;

RacePairs
racePairs(const detect::RaceReport &report)
{
    RacePairs pairs;
    for (const detect::DataRace &race : report.races()) {
        const uint32_t a = race.prior.insn_index;
        const uint32_t b = race.current.insn_index;
        pairs.insert({std::min(a, b), std::max(a, b)});
    }
    return pairs;
}

double
recallOf(const RacePairs &baseline, const RacePairs &detected)
{
    if (baseline.empty())
        return 1.0;
    size_t hit = 0;
    for (const auto &pair : baseline)
        hit += detected.count(pair);
    return static_cast<double>(hit) /
           static_cast<double>(baseline.size());
}

struct TrialOutcome {
    bool crashed = false;
    bool rejected = false; ///< TraceError (uninterpretable input)
    double recall = 0;
    trace::SegmentLoss loss;
    uint64_t resyncs = 0;
    uint64_t quarantined = 0;
};

/** One corrupted-analysis trial; exceptions are harness failures. */
TrialOutcome
runTrial(const workload::Workload &bug, const core::OfflineOptions &opt,
         const std::vector<uint8_t> &corrupted,
         const RacePairs &baseline)
{
    TrialOutcome out;
    try {
        auto loaded = trace::readTrace(corrupted);
        if (!loaded.ok()) {
            out.rejected = true;
            return out;
        }
        out.loss = loaded.value().loss;
        core::ParallelOfflineAnalyzer analyzer(*bug.program, opt);
        core::OfflineResult result =
            analyzer.analyze(loaded.value().trace);
        out.recall = recallOf(baseline, racePairs(result.report));
        out.resyncs = result.decode_stats.resyncs;
        out.quarantined = result.quarantine.windows_quarantined;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "CRASH: analysis threw: %s\n", e.what());
        out.crashed = true;
    } catch (...) {
        std::fprintf(stderr, "CRASH: analysis threw a non-exception\n");
        out.crashed = true;
    }
    return out;
}

std::vector<uint8_t>
corrupt(const std::vector<uint8_t> &clean, const std::string &mode,
        double rate, uint64_t seed)
{
    std::vector<uint8_t> bytes = clean;
    Rng rng(seed);
    if (mode == "segflip") {
        fault::corruptSegments(bytes, rate, rng);
    } else if (mode == "segdrop") {
        fault::dropSegments(bytes, rate, rng);
    } else if (mode == "truncate") {
        const auto keep = static_cast<size_t>(
            static_cast<double>(bytes.size()) * (1.0 - rate));
        fault::truncateAt(bytes, keep);
    }
    return bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    unsigned jobs = 2;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(std::strtoul(argv[i + 1],
                                                      nullptr, 10));
    }
    const int trials = bench::envTrials(3);
    const char *kModes[] = {"segflip", "segdrop", "truncate"};

    bench::banner("Figure 13",
                  "Race-report recall vs trace-corruption rate "
                  "(segment bit flips, segment drops, truncation).");
    std::printf("jobs = %u, trials per cell = %d\n\n", jobs, trials);
    std::printf("%-16s %-9s %7s %8s %9s %9s %8s\n", "app", "mode",
                "rate", "recall", "segs lost", "resyncs", "rejects");

    bool any_crash = false;
    double floor_recall_sum = 0;
    uint64_t floor_cells = 0;

    for (const char *name : kSubjects) {
        auto bug = workload::makeRacyBug(name, bench::envScale());
        auto cfg = core::proRaceConfig(10000, 42, bug.pt_filter);
        core::RunArtifacts run =
            core::Session::run(*bug.program, bug.setup, cfg.session);
        const std::vector<uint8_t> clean =
            trace::serializeTrace(run.trace);

        core::OfflineOptions opt = cfg.offline;
        opt.num_threads = jobs;
        core::ParallelOfflineAnalyzer analyzer(*bug.program, opt);
        const RacePairs baseline =
            racePairs(analyzer.analyze(run.trace).report);

        for (const char *mode : kModes) {
            for (const double rate : kRates) {
                double recall_sum = 0;
                uint64_t segs_dropped = 0, resyncs = 0, rejects = 0;
                int measured = 0;
                for (int trial = 0; trial < trials; ++trial) {
                    const uint64_t seed =
                        0xF13ull * 1000003ull + trial * 7919ull +
                        static_cast<uint64_t>(
                            std::hash<std::string>{}(name)) +
                        static_cast<uint64_t>(rate * 1e6);
                    const std::vector<uint8_t> bytes =
                        corrupt(clean, mode, rate, seed);
                    const TrialOutcome out =
                        runTrial(bug, opt, bytes, baseline);
                    any_crash = any_crash || out.crashed;
                    if (out.crashed)
                        continue;
                    if (out.rejected) {
                        ++rejects;
                        continue;
                    }
                    recall_sum += out.recall;
                    segs_dropped += out.loss.segments_dropped;
                    resyncs += out.resyncs;
                    ++measured;
                    json.record(
                        "fig13_fault_tolerance",
                        {{"app", name},
                         {"mode", mode},
                         {"rate", std::to_string(rate)},
                         {"trial", std::to_string(trial)}},
                        {{"recall", out.recall},
                         {"baseline_races",
                          static_cast<double>(baseline.size())},
                         {"segments_dropped",
                          static_cast<double>(
                              out.loss.segments_dropped)},
                         {"bytes_skipped",
                          static_cast<double>(out.loss.bytes_skipped)},
                         {"pebs_dropped",
                          static_cast<double>(out.loss.pebs_dropped)},
                         {"pt_damaged",
                          static_cast<double>(
                              out.loss.pt_streams_damaged)},
                         {"resyncs", static_cast<double>(out.resyncs)},
                         {"quarantined",
                          static_cast<double>(out.quarantined)}});
                }
                const double mean_recall =
                    measured ? recall_sum / measured : 0.0;
                if (measured &&
                    (std::strcmp(mode, "segflip") == 0 ||
                     std::strcmp(mode, "segdrop") == 0) &&
                    rate <= kFloorMaxRate) {
                    floor_recall_sum += mean_recall;
                    ++floor_cells;
                }
                std::printf("%-16s %-9s %6.1f%% %7.1f%% %9llu %9llu "
                            "%8llu\n",
                            name, mode, 100 * rate, 100 * mean_recall,
                            static_cast<unsigned long long>(
                                segs_dropped),
                            static_cast<unsigned long long>(resyncs),
                            static_cast<unsigned long long>(rejects));
                std::fflush(stdout);
            }
        }
    }

    const double floor_recall =
        floor_cells ? floor_recall_sum / static_cast<double>(floor_cells)
                    : 0.0;
    std::printf("\nmean segment-corruption recall at rates <= %.1f%%: "
                "%.1f%% (floor %.0f%%)\n",
                100 * kFloorMaxRate, 100 * floor_recall,
                100 * kRecallFloor);
    if (any_crash) {
        std::fprintf(stderr, "FAIL: a corrupted trace crashed the "
                             "analyzer\n");
        return 1;
    }
    if (floor_recall < kRecallFloor) {
        std::fprintf(stderr, "FAIL: recall %.3f below the %.2f floor\n",
                     floor_recall, kRecallFloor);
        return 1;
    }
    std::printf("PASS: zero crashes, recall floor held\n");
    return 0;
}

/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Every binary regenerates one table or figure of the paper's
 * evaluation (§7) by running the actual pipeline — no numbers are
 * hard-coded. Environment knobs:
 *
 *   PRORACE_SCALE   workload length multiplier (default 1.0)
 *   PRORACE_TRIALS  traces per configuration for Table 2 (default 25;
 *                   the paper uses 100)
 */

#ifndef PRORACE_BENCH_BENCH_UTIL_HH
#define PRORACE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace prorace::bench {

/** Workload scale factor from PRORACE_SCALE. */
inline double
envScale(double def = 1.0)
{
    const char *s = std::getenv("PRORACE_SCALE");
    return s ? std::atof(s) : def;
}

/** Trial count from PRORACE_TRIALS. */
inline int
envTrials(int def)
{
    const char *s = std::getenv("PRORACE_TRIALS");
    return s ? std::atoi(s) : def;
}

/** Standard banner naming the regenerated figure/table. */
inline void
banner(const char *figure, const char *caption)
{
    std::printf("==================================================="
                "===========================\n");
    std::printf("ProRace reproduction — %s\n%s\n", figure, caption);
    std::printf("==================================================="
                "===========================\n");
}

/** The sampling periods the paper sweeps. */
inline const std::vector<uint64_t> &
paperPeriods()
{
    static const std::vector<uint64_t> periods{10, 100, 1000, 10000,
                                              100000};
    return periods;
}

} // namespace prorace::bench

#endif // PRORACE_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Every binary regenerates one table or figure of the paper's
 * evaluation (§7) by running the actual pipeline — no numbers are
 * hard-coded. Environment knobs:
 *
 *   PRORACE_SCALE   workload length multiplier (default 1.0)
 *   PRORACE_TRIALS  traces per configuration for Table 2 (default 25;
 *                   the paper uses 100)
 */

#ifndef PRORACE_BENCH_BENCH_UTIL_HH
#define PRORACE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace prorace::bench {

/** Workload scale factor from PRORACE_SCALE. */
inline double
envScale(double def = 1.0)
{
    const char *s = std::getenv("PRORACE_SCALE");
    return s ? std::atof(s) : def;
}

/** Trial count from PRORACE_TRIALS. */
inline int
envTrials(int def)
{
    const char *s = std::getenv("PRORACE_TRIALS");
    return s ? std::atoi(s) : def;
}

/** Standard banner naming the regenerated figure/table. */
inline void
banner(const char *figure, const char *caption)
{
    std::printf("==================================================="
                "===========================\n");
    std::printf("ProRace reproduction — %s\n%s\n", figure, caption);
    std::printf("==================================================="
                "===========================\n");
}

/** The sampling periods the paper sweeps. */
inline const std::vector<uint64_t> &
paperPeriods()
{
    static const std::vector<uint64_t> periods{10, 100, 1000, 10000,
                                              100000};
    return periods;
}

/**
 * Machine-readable benchmark output, enabled with `--json <path>`.
 *
 * Each record is one JSON object per line (JSONL):
 *   {"bench": "...", "config": {...}, "metrics": {...}}
 * so per-PR perf trajectories (BENCH_*.json) can be collected by
 * appending records across runs without parsing state.
 *
 * Usage in a harness main:
 *   bench::JsonReporter json(argc, argv);        // consumes --json
 *   ...
 *   json.record("fig12", {{"app", name}}, {{"total_s", total}});
 */
class JsonReporter
{
  public:
    /** Scan argv for `--json <path>`; no file is written without it. */
    JsonReporter(int argc, char **argv)
    {
        for (int i = 1; i + 1 < argc; ++i) {
            if (std::strcmp(argv[i], "--json") == 0)
                path_ = argv[i + 1];
        }
    }

    ~JsonReporter()
    {
        if (path_.empty())
            return;
        std::FILE *f = std::fopen(path_.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path_.c_str());
            return;
        }
        for (const std::string &line : lines_)
            std::fprintf(f, "%s\n", line.c_str());
        std::fclose(f);
    }

    bool enabled() const { return !path_.empty(); }

    /** Queue one {bench, config, metrics} record. */
    void
    record(const std::string &bench,
           const std::vector<std::pair<std::string, std::string>> &config,
           const std::vector<std::pair<std::string, double>> &metrics)
    {
        if (path_.empty())
            return;
        std::string line = "{\"bench\": \"" + escape(bench) +
            "\", \"config\": {";
        for (size_t i = 0; i < config.size(); ++i) {
            line += (i ? ", " : "") + quoted(config[i].first) + ": " +
                quoted(config[i].second);
        }
        line += "}, \"metrics\": {";
        for (size_t i = 0; i < metrics.size(); ++i) {
            char value[64];
            std::snprintf(value, sizeof(value), "%.9g",
                          metrics[i].second);
            line += (i ? ", " : "") + quoted(metrics[i].first) + ": " +
                value;
        }
        line += "}}";
        lines_.push_back(std::move(line));
    }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    static std::string
    quoted(const std::string &s)
    {
        return "\"" + escape(s) + "\"";
    }

    std::string path_;
    std::vector<std::string> lines_;
};

} // namespace prorace::bench

#endif // PRORACE_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Ablation study of the pipeline's design choices (not a paper figure;
 * DESIGN.md §5-6 call these out):
 *
 *  1. PT timing-packet density vs sample-alignment quality: sparser TSC
 *     packets shrink the trace but widen the timing brackets the
 *     aligner must disambiguate.
 *  2. Backward-replay rounds: forward-only vs one vs three
 *     forward/backward fixed-point rounds (recovery ratio).
 *  3. The ProRace driver's randomized first sampling window: with a
 *     fixed first window every trace of a deterministic program samples
 *     the same instructions, collapsing detection diversity.
 */

#include <cstdio>
#include <set>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "workload/racybugs.hh"

using namespace prorace;

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    bench::banner("Ablation (not in the paper)",
                  "Design-choice ablations: PT timing density, backward "
                  "rounds, randomized first window.");
    workload::Workload w =
        workload::makeRacyBug("cherokee-0.9.2", bench::envScale());

    // --- 1. TSC packet density vs alignment ---
    std::printf("1. PT TSC-packet period vs alignment (PEBS period "
                "2000):\n%12s %12s %12s %14s\n", "tsc-period",
                "pt-bytes", "matched", "unmatched");
    for (uint32_t tsc_period : {8u, 32u, 128u, 512u}) {
        core::PipelineConfig cfg =
            core::proRaceConfig(2000, 7, w.pt_filter);
        cfg.session.tracing.pt.tsc_packet_period = tsc_period;
        auto online =
            core::Session::run(*w.program, w.setup, cfg.session);
        auto paths =
            pmu::decodePt(*w.program, w.pt_filter, online.trace);
        replay::AlignStats stats;
        replay::alignTrace(*w.program, paths, online.trace, &stats);
        std::printf("%12u %12llu %12llu %14llu\n", tsc_period,
                    static_cast<unsigned long long>(
                        online.trace.meta.pt_bytes),
                    static_cast<unsigned long long>(
                        stats.samples_matched),
                    static_cast<unsigned long long>(
                        stats.samples_unmatched));
        json.record("ablation_tsc_density",
                    {{"tsc_period", std::to_string(tsc_period)}},
                    {{"pt_bytes", static_cast<double>(
                          online.trace.meta.pt_bytes)},
                     {"matched", static_cast<double>(
                          stats.samples_matched)},
                     {"unmatched", static_cast<double>(
                          stats.samples_unmatched)}});
    }

    // --- 2. Backward-replay rounds ---
    std::printf("\n2. Fixed-point rounds vs recovery (PEBS period "
                "2000):\n%12s %14s %14s\n", "rounds", "recovered",
                "ratio");
    {
        core::PipelineConfig cfg =
            core::proRaceConfig(2000, 7, w.pt_filter);
        auto online =
            core::Session::run(*w.program, w.setup, cfg.session);
        auto paths =
            pmu::decodePt(*w.program, w.pt_filter, online.trace);
        auto aligns =
            replay::alignTrace(*w.program, paths, online.trace);
        for (int rounds : {0, 1, 3}) {
            replay::ReplayConfig rcfg;
            rcfg.mode = rounds == 0
                ? replay::ReplayMode::kForwardOnly
                : replay::ReplayMode::kForwardBackward;
            rcfg.max_backward_rounds = rounds;
            replay::Replayer rep(*w.program, rcfg);
            rep.replayAll(paths, aligns, online.trace);
            std::printf("%12d %14llu %13.1fx\n", rounds,
                        static_cast<unsigned long long>(
                            rep.stats().totalAccesses()),
                        rep.stats().recoveryRatio());
            json.record("ablation_backward_rounds",
                        {{"rounds", std::to_string(rounds)}},
                        {{"recovered", static_cast<double>(
                              rep.stats().totalAccesses())},
                         {"ratio", rep.stats().recoveryRatio()}});
        }
    }

    // --- 3. Randomized first window ---
    std::printf("\n3. First-window randomization vs sampling diversity "
                "(6 traces, PEBS period 997):\n");
    for (bool randomize : {false, true}) {
        std::set<uint32_t> first_insns;
        for (uint64_t t = 1; t <= 6; ++t) {
            // Same program input and schedule seed for every trace:
            // only the driver's arming policy differs.
            core::PipelineConfig cfg =
                core::proRaceConfig(997, 55, w.pt_filter);
            cfg.session.tracing.seed = 100 + t;
            if (!randomize) {
                // The vanilla driver arms the full period every time.
                cfg.session.tracing.driver = driver::DriverKind::kVanilla;
            }
            auto online =
                core::Session::run(*w.program, w.setup, cfg.session);
            if (!online.trace.pebs.empty())
                first_insns.insert(online.trace.pebs.front().insn_index);
        }
        std::printf("  %-28s distinct first-sample sites: %zu/6\n",
                    randomize ? "randomized (ProRace driver)"
                              : "fixed (vanilla driver)",
                    first_insns.size());
        json.record("ablation_first_window",
                    {{"randomized", randomize ? "yes" : "no"}},
                    {{"distinct_sites",
                      static_cast<double>(first_insns.size())}});
    }
    std::printf("\nThe randomized window is the paper's §4.1.2 third "
                "driver change; diversity across traces is what makes "
                "repeated production runs accumulate coverage.\n");
    return 0;
}

/**
 * @file
 * Regenerates Figure 8: trace generation rate (MB per second of traced
 * execution) for the PARSEC suite. The paper's salient shape: rates
 * grow roughly 10x per period decade until storage backpressure drops
 * samples, which makes the period-10 rate *lower* than period-100.
 */

#include "bench_util.hh"
#include "overhead_common.hh"
#include "workload/apps.hh"

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    bench::banner("Figure 8",
                  "Trace size (MB/s), PARSEC-model suite, ProRace "
                  "driver. PEBS records dominate (~99%).");
    auto suite = workload::parsecWorkloads(bench::envScale());
    bench::traceSizeSweep(suite, &json, "fig08_parsec_tracesize");
    std::printf("\npaper geomeans (MB/s): 463 @10, 597 @100, 132 @1K, "
                "16.9 @10K, 2.6 @100K (note the 10-vs-100 inversion)\n");
    return 0;
}

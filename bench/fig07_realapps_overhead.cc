/**
 * @file
 * Regenerates Figure 7: ProRace runtime overhead on the real-world
 * application models. Network-I/O-bound services (apache, cherokee,
 * memcached, aget) hide the tracing cost behind I/O waits; the CPU- and
 * file-I/O-bound subjects (mysql, transmission, pfscan, pbzip2) expose
 * it.
 *
 * Paper reference points (geomean): 0.8% @100K, 2.6% @10K, 8% @1K,
 * 34% @100, 80% @10.
 */

#include "bench_util.hh"
#include "overhead_common.hh"
#include "workload/apps.hh"

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    bench::banner("Figure 7",
                  "Runtime overhead, real-application models, ProRace "
                  "driver (thread counts per Table 1).");
    auto suite = workload::realAppWorkloads(bench::envScale());
    bench::overheadSweep(suite, driver::DriverKind::kProRace,
                         /*print_breakdown=*/false, &json,
                         "fig07_realapps_overhead");
    std::printf("\npaper geomeans:        80%%         34%%          8%%"
                "        2.6%%        0.8%%\n");
    return 0;
}

/**
 * @file
 * Figure 18 (beyond the paper): crash-recovery cost and self-healing
 * isolation of the durable analysis service.
 *
 * Part A — journal recovery: write-ahead report journals of growing
 * record counts are replayed into a fresh ReportStore, timing open()
 * recovery. For every size the journal is additionally torn at random
 * offsets and recovered again, checking the WAL contract: the rebuilt
 * store is byte-identical to the store at the last whole record, and
 * no record before the tear is ever lost.
 *
 * Part B — warm starts: one recorded subject is streamed into a
 * durable service twice. The first session runs cold and writes
 * detector checkpoints; the second must resume from one (warm start)
 * and still produce the byte-identical report.
 *
 * Part C — quarantine isolation: the same fleet is run clean and then
 * with poison tenants streaming garbage plus a fault injector that
 * crashes every poison analysis. The healthy tenants must all still
 * complete, and their throughput must hold a generous floor of the
 * clean run's (the poison work is bounded by supervision, not free).
 *
 * Self-asserted checks (the harness exits nonzero on violation):
 *   1. Zero report loss: recovery replays exactly the records written
 *      (and, under a tear, exactly the whole-record prefix).
 *   2. Recovered stores are byte-identical to the live JSONL snapshot
 *      taken at the corresponding ingest.
 *   3. The re-streamed session warm-starts and reports identically.
 *   4. Healthy fleet completion is unaffected by poison tenants, and
 *      healthy throughput stays above 10% of the clean run.
 *
 * `--json <path>` writes one JSONL record per configuration.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "service/fleet.hh"
#include "service/report_store.hh"
#include "service/service.hh"
#include "support/journal.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"
#include "workload/registry.hh"

namespace {

using namespace prorace;
using support::Journal;
using support::JournalRecord;

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::printf("SELF-CHECK FAILED: %s\n", what);
        ++failures;
    }
}

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Scratch {
    Scratch()
    {
        path = (std::filesystem::temp_directory_path() /
                ("prorace-fig18-" + std::to_string(::getpid())))
                   .string();
        std::filesystem::create_directories(path);
    }

    ~Scratch()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::string path;
};

detect::RaceReport
syntheticReport(Rng &rng)
{
    detect::RaceReport report;
    const int races = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < races; ++i) {
        detect::DataRace race;
        race.addr = 0x1000 + rng.below(1 << 14) * 8;
        race.prior.tid = 0;
        race.prior.insn_index = static_cast<uint32_t>(rng.below(2000));
        race.prior.is_write = true;
        race.prior.tsc = rng.below(1 << 20);
        race.current.tid = 1;
        race.current.insn_index = static_cast<uint32_t>(rng.below(2000));
        race.current.is_write = rng.chance(0.5);
        race.current.tsc = race.prior.tsc + 1 + rng.below(100);
        report.add(race);
    }
    return report;
}

/** Part A: one journal size — write, recover, tear, recover again. */
void
runJournalPoint(const Scratch &scratch, uint64_t records,
                bench::JsonReporter &json)
{
    const std::string path = scratch.path + "/reports-" +
        std::to_string(records) + ".jrnl";
    Rng rng(records * 31 + 7);

    // Pre-choose tear points (record indices whose record the tear
    // lands inside), then write a journal through the live store path,
    // snapshotting the JSONL only at those prefixes and at the end —
    // snapshotting every ingest would be O(n²) in time and memory.
    std::vector<uint64_t> tears;
    for (int t = 0; t < 4; ++t)
        tears.push_back(rng.below(records));
    std::map<uint64_t, std::string> snapshots;
    snapshots[0] = "";
    {
        Journal journal;
        std::string error;
        if (!journal.open(path, {}, nullptr, &error)) {
            check(false, "journal opens for writing");
            return;
        }
        service::ReportStore store;
        store.bindJournal(&journal);
        const std::vector<std::string> tenants = {"a", "b", "c", "d"};
        const std::vector<std::string> programs = {"httpd", "pbzip2",
                                                   "aget"};
        for (uint64_t i = 0; i < records; ++i) {
            store.ingest(tenants[rng.below(tenants.size())],
                         programs[rng.below(programs.size())],
                         syntheticReport(rng), i + 1);
            // After ingest i the store holds i+1 reports; a tear
            // inside record index k leaves a k-record prefix, so the
            // snapshot it must match is the one taken after k ingests.
            for (const uint64_t tear : tears)
                if (tear == i + 1)
                    snapshots[i + 1] = store.toJsonl();
        }
        snapshots[records] = store.toJsonl();
        journal.close();
    }
    const uint64_t journal_bytes = std::filesystem::file_size(path);

    // Clean recovery, timed.
    service::ReportStore recovered;
    Journal journal;
    std::string error;
    const double t0 = now();
    const bool opened = journal.open(
        path, {},
        [&](const JournalRecord &r) {
            recovered.applyIngestRecord(r.payload);
        },
        &error);
    const double recovery_s = now() - t0;
    journal.close();
    check(opened, "journal recovery opens");
    check(journal.stats().recovered_records == records,
          "zero report loss: every record replayed");
    check(recovered.toJsonl() == snapshots[records],
          "recovered store byte-identical to live store");
    check(recovered.maxSequence() == records,
          "sequence numbering survives recovery");

    // Tear the journal at random offsets and recover each copy: the
    // valid whole-record prefix always comes back exactly.
    std::vector<uint8_t> bytes;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        bytes.resize(journal_bytes);
        if (!f || std::fread(bytes.data(), 1, bytes.size(), f) !=
                      bytes.size())
            check(false, "journal readable for tearing");
        if (f)
            std::fclose(f);
    }
    const auto full = support::scanJournal(bytes);
    check(full.records.size() == records,
          "scan sees every written record");
    for (const uint64_t tear : tears) {
        if (tear >= full.records.size())
            continue;
        const JournalRecord &victim = full.records[tear];
        const size_t keep = static_cast<size_t>(
            victim.offset + rng.below(victim.end_offset - victim.offset));
        std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + keep);
        const auto scan = support::scanJournal(torn);
        service::ReportStore partial;
        for (const JournalRecord &r : scan.records)
            partial.applyIngestRecord(r.payload);
        check(scan.records.size() == tear,
              "tear inside record k keeps exactly k whole records");
        check(snapshots.count(scan.records.size()) &&
                  partial.toJsonl() == snapshots[scan.records.size()],
              "torn-tail recovery matches the whole-record prefix");
    }

    const double mb = static_cast<double>(journal_bytes) / (1 << 20);
    std::printf("%7llu records (%6.2f MB): recovery %7.1f ms "
                "(%7.0f rec/s, %6.1f MB/s), %llu distinct races\n",
                static_cast<unsigned long long>(records), mb,
                recovery_s * 1e3,
                recovery_s > 0 ? records / recovery_s : 0,
                recovery_s > 0 ? mb / recovery_s : 0,
                static_cast<unsigned long long>(
                    recovered.distinctRaces()));

    json.record("fig18_journal_recovery",
                {{"records", std::to_string(records)}},
                {{"journal_bytes", static_cast<double>(journal_bytes)},
                 {"recovery_s", recovery_s},
                 {"records_per_s",
                  recovery_s > 0 ? records / recovery_s : 0},
                 {"distinct_races",
                  static_cast<double>(recovered.distinctRaces())}});
}

/** Part B: cold session, then warm-started re-stream. */
void
runWarmStart(const Scratch &scratch, bench::JsonReporter &json)
{
    auto w = workload::findWorkload("aget-bug2", 0.4);
    if (!w) {
        check(false, "warm-start subject exists");
        return;
    }
    core::PipelineConfig cfg = core::proRaceConfig(8, 19, w->pt_filter);
    cfg.session.run_baseline = false;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);
    const std::vector<uint8_t> bytes = trace::serializeTrace(run.trace);

    service::ServiceOptions options;
    options.offline.pt_filter = w->pt_filter;
    options.offline.incremental.batch_events = 1024;
    options.offline.incremental.gc_min_events = 256;
    options.state_dir = scratch.path + "/warm";
    service::AnalysisService svc(options);
    svc.registerProgram("aget-bug2", w->program);

    auto stream = [&] {
        const uint64_t id = svc.openSession("warm-tenant", "aget-bug2");
        check(id != 0, "warm-start session opens");
        for (size_t off = 0; off < bytes.size(); off += 4096) {
            const size_t len = std::min<size_t>(4096,
                                                bytes.size() - off);
            svc.submit(id, bytes.data() + off, len);
        }
        svc.closeSession(id);
        svc.drain();
    };
    stream(); // cold: writes the checkpoint
    stream(); // warm: must resume from it

    const auto outcomes = svc.outcomes();
    check(outcomes.size() == 2, "both sessions completed");
    if (outcomes.size() == 2) {
        check(outcomes[0].ok && outcomes[1].ok, "sessions analyzed ok");
        check(outcomes[0].checkpoints_written > 0,
              "cold session wrote checkpoints");
        check(!outcomes[0].warm_started, "first session ran cold");
        check(outcomes[1].warm_started,
              "re-streamed session warm-started");
        check(outcomes[0].report.format(w->program.get()) ==
                  outcomes[1].report.format(w->program.get()),
              "warm-start report byte-identical to cold");
        std::printf("warm start: cold %.1f ms (%llu checkpoints), warm "
                    "%.1f ms, reports identical\n",
                    outcomes[0].ingest_to_report_seconds * 1e3,
                    static_cast<unsigned long long>(
                        outcomes[0].checkpoints_written),
                    outcomes[1].ingest_to_report_seconds * 1e3);
        json.record(
            "fig18_warm_start", {{"subject", "aget-bug2"}},
            {{"cold_s", outcomes[0].ingest_to_report_seconds},
             {"warm_s", outcomes[1].ingest_to_report_seconds},
             {"checkpoints",
              static_cast<double>(outcomes[0].checkpoints_written)}});
    }
    svc.shutdown();
}

/** One fleet run; returns healthy events/second. */
double
runFleetOnce(unsigned poison, bench::JsonReporter &json)
{
    service::FleetConfig cfg;
    cfg.producers = 3;
    cfg.sessions_per_producer = 2;
    cfg.subjects = {"aget-bug2", "pbzip2-0.9.4"};
    cfg.scale = 0.25;
    cfg.period = 8;
    cfg.seed = 7;
    cfg.poison_producers = poison;
    cfg.service.num_workers = 3;
    cfg.service.supervision.max_retries = 1;
    cfg.service.supervision.backoff_initial_seconds = 0.001;
    cfg.service.supervision.tenant_quarantine_strikes = 1;
    const service::FleetResult r = service::runFleet(cfg);

    uint64_t healthy_completed = 0, healthy_failed = 0;
    for (const auto &[name, ts] : r.tenants) {
        if (name.rfind("poison-", 0) == 0)
            continue;
        healthy_completed += ts.sessions_completed;
        healthy_failed += ts.sessions_failed;
    }
    check(healthy_completed ==
              static_cast<uint64_t>(cfg.producers) *
                  cfg.sessions_per_producer,
          "every healthy session completed");
    check(healthy_failed == 0, "no healthy session failed");
    const double events_per_s = r.wall_seconds > 0
        ? static_cast<double>(r.stats.rollup.incremental.events) /
            r.wall_seconds
        : 0;
    std::printf("fleet with %u poison tenants: %llu healthy sessions, "
                "%llu poison sessions, %6.2fs, %7.0f ev/s\n",
                poison,
                static_cast<unsigned long long>(healthy_completed),
                static_cast<unsigned long long>(r.poison_sessions),
                r.wall_seconds, events_per_s);
    json.record("fig18_quarantine",
                {{"poison", std::to_string(poison)}},
                {{"wall_s", r.wall_seconds},
                 {"events_per_s", events_per_s},
                 {"healthy_completed",
                  static_cast<double>(healthy_completed)},
                 {"poison_sessions",
                  static_cast<double>(r.poison_sessions)}});
    return events_per_s;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json(argc, argv);
    Scratch scratch;

    std::printf("=== fig18 part A: journal recovery time vs size ===\n");
    for (const uint64_t records : {1000ull, 4000ull, 16000ull})
        runJournalPoint(scratch, records, json);

    std::printf("\n=== fig18 part B: checkpoint warm start ===\n");
    runWarmStart(scratch, json);

    std::printf("\n=== fig18 part C: quarantine isolation ===\n");
    const double clean = runFleetOnce(0, json);
    const double poisoned = runFleetOnce(2, json);
    // Generous floor: quarantine bounds the damage, it does not make
    // poison free. CI boxes are noisy; 10% catches only collapse.
    check(poisoned > 0.1 * clean,
          "healthy throughput holds a 10% floor under poison");

    if (failures) {
        std::printf("\n%d self-check(s) FAILED\n", failures);
        return 1;
    }
    std::printf("\nall self-checks passed\n");
    return 0;
}

/**
 * @file
 * Regenerates Table 2: detection probability of the twelve real-world
 * race bugs, RaceZ vs ProRace, sampling periods 100 / 1000 / 10000.
 *
 * For each (bug, period, detector) we collect PRORACE_TRIALS traces
 * (the paper collects 100) with different seeds and uncontrolled
 * schedules, run the full offline pipeline on each, and count the
 * traces whose report names the injected racy instruction pair.
 *
 * Paper shape: ProRace detects nearly everything at period 100 and
 * 27.5% on average at 10000 (vs RaceZ's 0.2%); PC-relative bugs are
 * detected at every period by ProRace; RaceZ misses them almost always.
 */

#include <cstdio>

#include "baseline/racez.hh"
#include "bench_util.hh"
#include "core/pipeline.hh"
#include "workload/racybugs.hh"

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    const int trials = bench::envTrials(15);
    bench::banner("Table 2",
                  "Race-bug detection probability (percent of traces "
                  "that catch the bug).");
    std::printf("trials per cell: %d (paper: 100; set PRORACE_TRIALS)\n\n",
                trials);
    std::printf("%-16s %-18s %-18s | %-17s | %-17s\n", "bug",
                "manifestation", "access type", "RaceZ 100/1K/10K",
                "ProRace 100/1K/10K");

    const std::vector<uint64_t> periods{100, 1000, 10000};
    std::vector<double> z_avg(3, 0), p_avg(3, 0);
    auto bugs = workload::racyBugWorkloads(bench::envScale());
    for (const auto &bug : bugs) {
        int z[3] = {0, 0, 0}, p[3] = {0, 0, 0};
        for (size_t pi = 0; pi < periods.size(); ++pi) {
            for (int t = 0; t < trials; ++t) {
                const uint64_t seed = 5000 + 131 * t;
                auto zres = core::runPipeline(
                    *bug.program, bug.setup,
                    baseline::raceZConfig(periods[pi], seed));
                z[pi] += workload::bugDetected(bug.bugs[0],
                                               zres.offline.report);
                auto pres = core::runPipeline(
                    *bug.program, bug.setup,
                    core::proRaceConfig(periods[pi], seed,
                                        bug.pt_filter));
                p[pi] += workload::bugDetected(bug.bugs[0],
                                               pres.offline.report);
            }
            z_avg[pi] += 100.0 * z[pi] / trials;
            p_avg[pi] += 100.0 * p[pi] / trials;
            json.record("table2_race_detection",
                        {{"bug", bug.name},
                         {"period", std::to_string(periods[pi])}},
                        {{"racez_pct", 100.0 * z[pi] / trials},
                         {"prorace_pct", 100.0 * p[pi] / trials}});
        }
        std::printf("%-16s %-18s %-18s |  %4.0f %4.0f %4.0f    |  %4.0f "
                    "%4.0f %4.0f\n",
                    bug.name.c_str(),
                    bug.bugs[0].manifestation.c_str(),
                    workload::addressKindName(bug.bugs[0].kind),
                    100.0 * z[0] / trials, 100.0 * z[1] / trials,
                    100.0 * z[2] / trials, 100.0 * p[0] / trials,
                    100.0 * p[1] / trials, 100.0 * p[2] / trials);
        std::fflush(stdout);
    }
    std::printf("%-16s %-18s %-18s |  %4.1f %4.1f %4.1f    |  %4.1f "
                "%4.1f %4.1f\n",
                "(average)", "", "", z_avg[0] / 12, z_avg[1] / 12,
                z_avg[2] / 12, p_avg[0] / 12, p_avg[1] / 12,
                p_avg[2] / 12);
    std::printf("\npaper averages: ProRace 10K = 27.5%% vs RaceZ 10K = "
                "0.2%%; ProRace detects 11/12 bugs at period 100\n");
    return 0;
}

/**
 * @file
 * Regenerates Figure 11: memory-instruction recovery ratio (recovered +
 * sampled accesses per PEBS sample) for the six buggy applications at
 * sampling period 10000, comparing three reconstruction scopes:
 *
 *   basic-block          RaceZ's single-basic-block replay
 *   forward              PT-guided forward replay
 *   forward+backward     full ProRace
 *
 * Paper reference: basic-block averages 5.4x (apache 9.53x, mysql
 * 1.6x); forward 34x; forward+backward 64x.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "support/stats.hh"
#include "workload/racybugs.hh"

int
main(int argc, char **argv)
{
    using namespace prorace;
    bench::JsonReporter json(argc, argv);
    bench::banner("Figure 11",
                  "Memory recovery ratio at period 10000 (recovered + "
                  "sampled per sampled).");
    std::printf("%-16s %14s %14s %18s\n", "app", "basic-block",
                "forward", "forward+backward");

    // One representative buggy application per paper subject.
    const char *subjects[] = {"apache-25520", "mysql-3596",
                              "cherokee-0.9.2", "pbzip2-0.9.5", "pfscan",
                              "aget-bug2"};
    std::vector<double> bb_r, f_r, fb_r;
    for (const char *name : subjects) {
        auto bug = workload::makeRacyBug(name, bench::envScale());
        auto cfg = core::proRaceConfig(10000, 42, bug.pt_filter);
        auto online =
            core::Session::run(*bug.program, bug.setup, cfg.session);

        auto paths = pmu::decodePt(*bug.program, bug.pt_filter,
                                   online.trace);
        auto aligns =
            replay::alignTrace(*bug.program, paths, online.trace);

        double ratios[3] = {0, 0, 0};
        const replay::ReplayMode modes[3] = {
            replay::ReplayMode::kBasicBlock,
            replay::ReplayMode::kForwardOnly,
            replay::ReplayMode::kForwardBackward};
        for (int m = 0; m < 3; ++m) {
            replay::ReplayConfig rcfg;
            rcfg.mode = modes[m];
            replay::Replayer rep(*bug.program, rcfg);
            rep.replayAll(paths, aligns, online.trace);
            ratios[m] = rep.stats().recoveryRatio();
        }
        bb_r.push_back(ratios[0]);
        f_r.push_back(ratios[1]);
        fb_r.push_back(ratios[2]);
        std::printf("%-16s %13.1fx %13.1fx %17.1fx\n", name, ratios[0],
                    ratios[1], ratios[2]);
        json.record("fig11_memory_recovery", {{"app", name}},
                    {{"basic_block", ratios[0]},
                     {"forward", ratios[1]},
                     {"forward_backward", ratios[2]}});
        std::fflush(stdout);
    }
    std::printf("%-16s %13.1fx %13.1fx %17.1fx\n", "(average)",
                mean(bb_r), mean(f_r), mean(fb_r));
    std::printf("\npaper averages: basic-block 5.4x, forward 34x, "
                "forward+backward 64x\n");
    return 0;
}

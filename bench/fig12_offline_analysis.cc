/**
 * @file
 * Regenerates Figure 12: offline-analysis cost per one second of traced
 * program execution at sampling period 10000, with the pipeline
 * breakdown (PT decode / trace reconstruction / race detection).
 *
 * The paper (on PIN-based tooling) reports 54.5 s/s for apache and
 * 35.3 s/s for mysql, split 33.7% decode / 64.7% reconstruction /
 * 1.6% detection; reconstruction dominating and detection being a tiny
 * slice are the shapes to reproduce (our native replayer is much faster
 * than PIN in absolute terms).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/pipeline.hh"
#include "driver/cost_model.hh"
#include "workload/racybugs.hh"

int
main()
{
    using namespace prorace;
    bench::banner("Figure 12",
                  "Offline analysis seconds per 1 s of traced execution "
                  "(period 10000), with stage breakdown.");
    std::printf("%-16s %12s %12s %14s %12s\n", "app", "total s/s",
                "decode%", "reconstruct%", "detect%");

    const char *subjects[] = {"apache-25520", "mysql-3596",
                              "cherokee-0.9.2", "pbzip2-0.9.5", "pfscan",
                              "aget-bug2"};
    double decode_sum = 0, rec_sum = 0, det_sum = 0;
    for (const char *name : subjects) {
        auto bug = workload::makeRacyBug(name, bench::envScale());
        auto cfg = core::proRaceConfig(10000, 42, bug.pt_filter);
        auto result = core::runPipeline(*bug.program, bug.setup, cfg);

        const double run_seconds =
            static_cast<double>(result.online.traced_cycles) /
            driver::kCyclesPerSecond;
        const double total = result.offline.totalSeconds();
        const double per_second = total / run_seconds;
        decode_sum += result.offline.decode_seconds;
        rec_sum += result.offline.reconstruct_seconds;
        det_sum += result.offline.detect_seconds;
        std::printf("%-16s %12.1f %11.1f%% %13.1f%% %11.2f%%\n", name,
                    per_second,
                    100 * result.offline.decode_seconds / total,
                    100 * result.offline.reconstruct_seconds / total,
                    100 * result.offline.detect_seconds / total);
        std::fflush(stdout);
    }
    const double total = decode_sum + rec_sum + det_sum;
    std::printf("%-16s %12s %11.1f%% %13.1f%% %11.2f%%\n", "(overall)",
                "", 100 * decode_sum / total, 100 * rec_sum / total,
                100 * det_sum / total);
    std::printf("\npaper breakdown: decode 33.7%%, reconstruction "
                "64.7%%, detection 1.6%% (PIN-based engine)\n");
    return 0;
}

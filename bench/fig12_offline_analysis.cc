/**
 * @file
 * Regenerates Figure 12: offline-analysis cost per one second of traced
 * program execution at sampling period 10000, with the pipeline
 * breakdown (PT decode / trace reconstruction / race detection).
 *
 * The paper (on PIN-based tooling) reports 54.5 s/s for apache and
 * 35.3 s/s for mysql, split 33.7% decode / 64.7% reconstruction /
 * 1.6% detection; reconstruction dominating and detection being a tiny
 * slice are the shapes to reproduce (our native replayer is much faster
 * than PIN in absolute terms).
 *
 * `--jobs N` switches to the scaling mode: each subject is traced once,
 * then analyzed serially and on an N-thread executor; the harness
 * reports the wall-clock speedup and checks that the parallel report is
 * byte-identical to the serial one. `--json <path>` writes JSONL
 * records in either mode.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "driver/cost_model.hh"
#include "support/timer.hh"
#include "workload/racybugs.hh"

namespace {

const char *kSubjects[] = {"apache-25520",  "mysql-3596",
                           "cherokee-0.9.2", "pbzip2-0.9.5", "pfscan",
                           "aget-bug2"};

int
runBreakdown(prorace::bench::JsonReporter &json)
{
    using namespace prorace;
    bench::banner("Figure 12",
                  "Offline analysis seconds per 1 s of traced execution "
                  "(period 10000), with stage breakdown.");
    std::printf("%-16s %12s %12s %14s %12s\n", "app", "total s/s",
                "decode%", "reconstruct%", "detect%");

    double decode_sum = 0, rec_sum = 0, det_sum = 0;
    for (const char *name : kSubjects) {
        auto bug = workload::makeRacyBug(name, bench::envScale());
        auto cfg = core::proRaceConfig(10000, 42, bug.pt_filter);
        auto result = core::runPipeline(*bug.program, bug.setup, cfg);

        const double run_seconds =
            static_cast<double>(result.online.traced_cycles) /
            driver::kCyclesPerSecond;
        const double total = result.offline.totalSeconds();
        const double per_second = total / run_seconds;
        decode_sum += result.offline.decode_seconds;
        rec_sum += result.offline.reconstruct_seconds;
        det_sum += result.offline.detect_seconds;
        std::printf("%-16s %12.1f %11.1f%% %13.1f%% %11.2f%%\n", name,
                    per_second,
                    100 * result.offline.decode_seconds / total,
                    100 * result.offline.reconstruct_seconds / total,
                    100 * result.offline.detect_seconds / total);
        std::fflush(stdout);
        const auto &pm = result.offline.replay_stats.program_map;
        json.record(
            "fig12_offline_analysis", {{"app", name}},
            {{"per_second", per_second},
             {"total_s", total},
             {"decode_s", result.offline.decode_seconds},
             {"reconstruct_s", result.offline.reconstruct_seconds},
             {"detect_s", result.offline.detect_seconds},
             // Shadow-structure behavior behind the wall time: paged
             // ProgramMap page/probe traffic and FastTrack's fast-path
             // and read-share mix.
             {"events",
              static_cast<double>(result.offline.extended_trace_events)},
             {"pm_pages", static_cast<double>(pm.pages_allocated)},
             {"pm_lookups", static_cast<double>(pm.page_lookups)},
             {"pm_cache_hits", static_cast<double>(pm.cache_hits)},
             {"ft_fast_path",
              static_cast<double>(
                  result.offline.detect_stats.epoch_fast_path)},
             {"ft_read_shares",
              static_cast<double>(
                  result.offline.detect_stats.read_shares)}});
    }
    const double total = decode_sum + rec_sum + det_sum;
    std::printf("%-16s %12s %11.1f%% %13.1f%% %11.2f%%\n", "(overall)",
                "", 100 * decode_sum / total, 100 * rec_sum / total,
                100 * det_sum / total);
    std::printf("\npaper breakdown: decode 33.7%%, reconstruction "
                "64.7%%, detection 1.6%% (PIN-based engine)\n");
    return 0;
}

int
runScaling(unsigned jobs, prorace::bench::JsonReporter &json)
{
    using namespace prorace;
    bench::banner("Figure 12 (scaling mode)",
                  "Serial vs parallel offline analysis of the same "
                  "trace; reports must be byte-identical.");
    std::printf("jobs = %u\n", jobs);
    std::printf("%-16s %12s %12s %10s %10s\n", "app", "serial s",
                "parallel s", "speedup", "identical");

    bool all_identical = true;
    double serial_sum = 0, parallel_sum = 0;
    for (const char *name : kSubjects) {
        auto bug = workload::makeRacyBug(name, bench::envScale());
        auto cfg = core::proRaceConfig(10000, 42, bug.pt_filter);
        core::RunArtifacts run =
            core::Session::run(*bug.program, bug.setup, cfg.session);

        Stopwatch timer;
        core::OfflineAnalyzer serial(*bug.program, cfg.offline);
        core::OfflineResult serial_result = serial.analyze(run.trace);
        const double serial_s = timer.lap();

        core::OfflineOptions par_opt = cfg.offline;
        par_opt.num_threads = jobs;
        core::ParallelOfflineAnalyzer parallel(*bug.program, par_opt);
        core::OfflineResult parallel_result =
            parallel.analyze(run.trace);
        const double parallel_s = timer.lap();

        const bool identical =
            serial_result.report.format(bug.program.get()) ==
                parallel_result.report.format(bug.program.get()) &&
            serial_result.extended_trace_events ==
                parallel_result.extended_trace_events;
        all_identical = all_identical && identical;
        serial_sum += serial_s;
        parallel_sum += parallel_s;
        std::printf("%-16s %12.3f %12.3f %9.2fx %10s\n", name, serial_s,
                    parallel_s, serial_s / parallel_s,
                    identical ? "yes" : "NO");
        std::fflush(stdout);
        json.record("fig12_scaling",
                    {{"app", name}, {"jobs", std::to_string(jobs)}},
                    {{"serial_s", serial_s},
                     {"parallel_s", parallel_s},
                     {"speedup", serial_s / parallel_s},
                     {"identical", identical ? 1.0 : 0.0}});
    }
    std::printf("%-16s %12.3f %12.3f %9.2fx %10s\n", "(overall)",
                serial_sum, parallel_sum, serial_sum / parallel_sum,
                all_identical ? "yes" : "NO");
    if (!all_identical) {
        std::fprintf(stderr, "FAIL: parallel report diverged from "
                             "serial\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    prorace::bench::JsonReporter json(argc, argv);
    unsigned jobs = 0;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            jobs = static_cast<unsigned>(std::strtoul(argv[i + 1],
                                                      nullptr, 10));
    }
    return jobs > 0 ? runScaling(jobs, json) : runBreakdown(json);
}

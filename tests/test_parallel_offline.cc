/**
 * @file
 * Serial/parallel equivalence of the offline-analysis engine: for every
 * workload, seed, and thread count, ParallelOfflineAnalyzer must
 * produce a byte-identical race report and identical pipeline
 * statistics to the serial OfflineAnalyzer on the same trace
 * (everything except the wall-clock timers).
 */

#include <gtest/gtest.h>

#include "asmkit/builder.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "workload/racybugs.hh"

namespace prorace {
namespace {

using asmkit::Program;
using asmkit::ProgramBuilder;
using isa::CondCode;
using isa::Reg;

const unsigned kThreadCounts[] = {1, 2, 8};

/**
 * Analyze @p run serially and with @p num_threads workers; every
 * non-timing field of the results must match exactly.
 */
void
expectEquivalent(const Program &program, const trace::RunTrace &run,
                 const core::OfflineOptions &base, unsigned num_threads,
                 const char *label, int *regeneration_rounds = nullptr)
{
    SCOPED_TRACE(std::string(label) + ", num_threads=" +
                 std::to_string(num_threads));

    core::OfflineOptions serial_opt = base;
    serial_opt.num_threads = 0;
    core::OfflineAnalyzer serial(program, serial_opt);
    core::OfflineResult s = serial.analyze(run);
    if (regeneration_rounds)
        *regeneration_rounds = s.regeneration_rounds;

    core::OfflineOptions parallel_opt = base;
    parallel_opt.num_threads = num_threads;
    core::ParallelOfflineAnalyzer parallel(program, parallel_opt);
    core::OfflineResult p = parallel.analyze(run);

    // The report, byte for byte.
    EXPECT_EQ(s.report.format(&program), p.report.format(&program));
    EXPECT_EQ(s.report.size(), p.report.size());

    // The extended trace and the regeneration trajectory.
    EXPECT_EQ(s.extended_trace_events, p.extended_trace_events);
    EXPECT_EQ(s.regeneration_rounds, p.regeneration_rounds);

    // Decode stats.
    EXPECT_EQ(s.decode_stats.packets, p.decode_stats.packets);
    EXPECT_EQ(s.decode_stats.path_entries, p.decode_stats.path_entries);

    // Alignment stats.
    EXPECT_EQ(s.align_stats.samples_matched,
              p.align_stats.samples_matched);
    EXPECT_EQ(s.align_stats.samples_unmatched,
              p.align_stats.samples_unmatched);
    EXPECT_EQ(s.align_stats.candidates_rejected,
              p.align_stats.candidates_rejected);

    // Replay stats, every counter.
    EXPECT_EQ(s.replay_stats.sampled, p.replay_stats.sampled);
    EXPECT_EQ(s.replay_stats.recovered_forward,
              p.replay_stats.recovered_forward);
    EXPECT_EQ(s.replay_stats.recovered_backward,
              p.replay_stats.recovered_backward);
    EXPECT_EQ(s.replay_stats.recovered_pcrel,
              p.replay_stats.recovered_pcrel);
    EXPECT_EQ(s.replay_stats.windows, p.replay_stats.windows);
    EXPECT_EQ(s.replay_stats.inconsistent_windows,
              p.replay_stats.inconsistent_windows);
    EXPECT_EQ(s.replay_stats.backward_rounds,
              p.replay_stats.backward_rounds);
    EXPECT_EQ(s.replay_stats.violations_branch,
              p.replay_stats.violations_branch);
    EXPECT_EQ(s.replay_stats.violations_fact,
              p.replay_stats.violations_fact);
    EXPECT_EQ(s.replay_stats.violations_sample,
              p.replay_stats.violations_sample);
    EXPECT_EQ(s.replay_stats.violations_end,
              p.replay_stats.violations_end);
    EXPECT_EQ(s.replay_stats.violations_backward,
              p.replay_stats.violations_backward);

    // Detection stats (identical feed => identical FastTrack path mix).
    EXPECT_EQ(s.detect_stats.reads, p.detect_stats.reads);
    EXPECT_EQ(s.detect_stats.writes, p.detect_stats.writes);
    EXPECT_EQ(s.detect_stats.sync_ops, p.detect_stats.sync_ops);
    EXPECT_EQ(s.detect_stats.epoch_fast_path,
              p.detect_stats.epoch_fast_path);
    EXPECT_EQ(s.detect_stats.read_shares, p.detect_stats.read_shares);
}

/**
 * The §5.1 regeneration subject: two workers race on a global counter
 * whose stored value the replay reads back within the same window (the
 * global's address is a literal, so the emulated load succeeds), which
 * marks the racy location *consumed* and triggers the blacklist-and-
 * replay loop.
 */
Program
globalRaceProgram()
{
    ProgramBuilder b;
    b.globalU64("counter", 0);
    b.label("main");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "worker", Reg::r12);
    b.spawn(Reg::r9, "worker", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.halt();
    b.beginFunction("worker");
    b.movri(Reg::rcx, 0);
    b.label("loop");
    b.load(Reg::rax, b.symRef("counter"));
    b.addri(Reg::rax, 1);
    b.store(b.symRef("counter"), Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 300);
    b.jcc(CondCode::kLt, "loop");
    b.halt();
    return b.build();
}

TEST(ParallelOffline, MatchesSerialOnRacyBugWorkloads)
{
    // Two real-app bug subjects, several seeds, all thread counts.
    for (const char *name : {"cherokee-0.9.2", "pbzip2-0.9.5"}) {
        workload::Workload w = workload::makeRacyBug(name, 0.4);
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            auto cfg = core::proRaceConfig(100, seed, w.pt_filter);
            auto run =
                core::Session::run(*w.program, w.setup, cfg.session);
            for (unsigned n : kThreadCounts) {
                expectEquivalent(*w.program, run.trace, cfg.offline, n,
                                 name);
            }
        }
    }
}

TEST(ParallelOffline, MatchesSerialThroughRegenerationRounds)
{
    // The racy-bug scenario whose report triggers the §5.1
    // regeneration loop: the blacklist trajectory — and hence the
    // round count — must be identical too.
    Program p = globalRaceProgram();
    bool saw_regeneration = false;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        auto cfg = core::proRaceConfig(25, seed);
        auto run = core::Session::run(
            p, [](vm::Machine &m) { m.addThread("main"); }, cfg.session);
        for (unsigned n : kThreadCounts) {
            int rounds = 0;
            expectEquivalent(p, run.trace, cfg.offline, n,
                             "global-race", &rounds);
            saw_regeneration = saw_regeneration || rounds > 0;
        }
    }
    EXPECT_TRUE(saw_regeneration)
        << "no seed exercised the regeneration loop; the equivalence "
           "coverage is weaker than intended";
}

TEST(ParallelOffline, MatchesSerialOnRaceFreeWorkload)
{
    // A clean subject: both engines must agree on the empty report and
    // on every counter along the way.
    workload::Workload w = workload::makeRacyBug("apache-21287", 0.4);
    auto cfg = core::proRaceConfig(200, 9, w.pt_filter);
    auto run = core::Session::run(*w.program, w.setup, cfg.session);
    for (unsigned n : kThreadCounts)
        expectEquivalent(*w.program, run.trace, cfg.offline, n,
                         "apache-21287");
}

TEST(ParallelOffline, ZeroThreadsDelegatesToSerialEngine)
{
    workload::Workload w = workload::makeRacyBug("pfscan", 0.4);
    auto cfg = core::proRaceConfig(100, 2, w.pt_filter);
    auto run = core::Session::run(*w.program, w.setup, cfg.session);

    core::ParallelOfflineAnalyzer analyzer(*w.program, cfg.offline);
    ASSERT_EQ(cfg.offline.num_threads, 0u);
    core::OfflineResult r = analyzer.analyze(run.trace);
    // The serial delegation ran no executor tasks.
    EXPECT_EQ(analyzer.executorStats().executed, 0u);
    core::OfflineAnalyzer serial(*w.program, cfg.offline);
    core::OfflineResult s = serial.analyze(run.trace);
    EXPECT_EQ(r.report.format(w.program.get()),
              s.report.format(w.program.get()));
}

} // namespace
} // namespace prorace

/**
 * @file
 * Tests for the crash-safety and self-healing layer: the write-ahead
 * journal's prefix-validity and torn-tail recovery, byte-identical
 * report-store reconstruction at every journal prefix, detector
 * checkpoint/restore identity with uninterrupted analysis, service
 * restart recovery and warm starts, and the supervision machinery
 * (retry, deadline, session and tenant quarantine).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "detect/incremental.hh"
#include "fault_injection.hh"
#include "oracle/generator.hh"
#include "service/fleet.hh"
#include "service/report_store.hh"
#include "service/service.hh"
#include "support/journal.hh"
#include "support/rng.hh"
#include "testutil.hh"
#include "trace/trace_file.hh"
#include "workload/registry.hh"

namespace prorace {
namespace {

using support::ByteReader;
using support::ByteWriter;
using support::Journal;
using support::JournalRecord;
using support::JournalScan;

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

/** A per-test scratch directory, removed (recursively) on teardown. */
struct TempDir {
    explicit TempDir(const std::string &tag)
    {
        static std::atomic<uint64_t> counter{0};
        path = (std::filesystem::temp_directory_path() /
                ("prorace-" + tag + "-" +
                 std::to_string(::getpid()) + "-" +
                 std::to_string(counter++)))
                   .string();
        std::filesystem::create_directories(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::string
    file(const std::string &name) const
    {
        return path + "/" + name;
    }

    std::string path;
};

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

detect::DataRace
makeRace(uint32_t insn_a, uint32_t insn_b, bool write_a, bool write_b,
         uint64_t addr)
{
    detect::DataRace race;
    race.addr = addr;
    race.prior.insn_index = insn_a;
    race.prior.is_write = write_a;
    race.prior.tid = 0;
    race.prior.tsc = 10;
    race.current.insn_index = insn_b;
    race.current.is_write = write_b;
    race.current.tid = 1;
    race.current.tsc = 20;
    return race;
}

detect::RaceReport
reportOf(std::initializer_list<detect::DataRace> races)
{
    detect::RaceReport report;
    for (const detect::DataRace &race : races)
        report.add(race);
    return report;
}

/** One recorded workload, reusable across service tests. */
struct Recorded {
    std::shared_ptr<const asmkit::Program> program;
    pmu::PtFilter filter;
    trace::RunTrace trace;
    std::vector<uint8_t> bytes;
};

Recorded
recordWorkload(const std::string &name, double scale, uint64_t period,
               uint64_t seed)
{
    auto w = workload::findWorkload(name, scale);
    EXPECT_TRUE(w.has_value()) << name;
    core::PipelineConfig cfg = core::proRaceConfig(period, seed,
                                                   w->pt_filter);
    cfg.session.run_baseline = false;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);
    Recorded rec;
    rec.program = w->program;
    rec.filter = w->pt_filter;
    rec.trace = std::move(run.trace);
    rec.bytes = trace::serializeTrace(rec.trace);
    return rec;
}

void
streamSession(service::AnalysisService &svc, uint64_t id,
              const std::vector<uint8_t> &bytes, size_t chunk = 997)
{
    for (size_t off = 0; off < bytes.size(); off += chunk) {
        const size_t len = std::min(chunk, bytes.size() - off);
        svc.submit(id, bytes.data() + off, len);
    }
    svc.closeSession(id);
}

// ---------------------------------------------------------------------
// Journal: append/replay, torn tails, corruption
// ---------------------------------------------------------------------

std::vector<uint8_t>
payloadOf(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Journal, AppendSyncReplayRoundTrip)
{
    TempDir dir("journal");
    const std::string path = dir.file("j.jrnl");
    const std::vector<std::pair<uint32_t, std::vector<uint8_t>>> records =
        {{1, payloadOf("alpha")},
         {2, payloadOf("")},
         {1, payloadOf(std::string(1000, 'x'))},
         {7, {0x00, 0xff, 0x4a, 0x52, 0x4e, 0x4c}}};

    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(path, {}, nullptr, &error)) << error;
        for (const auto &[type, payload] : records)
            ASSERT_TRUE(j.append(type, payload));
        j.close();
    }

    Journal j;
    std::string error;
    std::vector<JournalRecord> replayed;
    ASSERT_TRUE(j.open(
        path, {},
        [&](const JournalRecord &r) { replayed.push_back(r); }, &error))
        << error;
    ASSERT_EQ(replayed.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(replayed[i].type, records[i].first) << i;
        EXPECT_EQ(replayed[i].payload, records[i].second) << i;
    }
    EXPECT_EQ(j.stats().recovered_records, records.size());
    EXPECT_EQ(j.stats().truncated_bytes, 0u);
    EXPECT_EQ(j.sizeBytes(), j.stats().recovered_bytes);

    // Appending after recovery continues the record sequence.
    ASSERT_TRUE(j.append(9, payloadOf("tail")));
    j.close();
    const JournalScan scan = support::scanJournalFile(path);
    ASSERT_EQ(scan.records.size(), records.size() + 1);
    EXPECT_TRUE(scan.clean);
    EXPECT_EQ(scan.records.back().type, 9u);
}

TEST(Journal, TornTailTruncationSweep)
{
    TempDir dir("journal-torn");
    const std::string path = dir.file("j.jrnl");
    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(path, {}, nullptr, &error)) << error;
        for (uint32_t i = 0; i < 5; ++i)
            ASSERT_TRUE(j.append(i + 1, payloadOf(std::string(
                                             7 * i + 3, 'a' + char(i)))));
        j.close();
    }
    const std::vector<uint8_t> full = readFile(path);
    const JournalScan full_scan = support::scanJournal(full);
    ASSERT_EQ(full_scan.records.size(), 5u);
    ASSERT_EQ(full_scan.valid_prefix_bytes, full.size());

    // Every possible crash point: the valid prefix is exactly the
    // records wholly contained in the kept bytes.
    for (size_t keep = 0; keep <= full.size(); ++keep) {
        std::vector<uint8_t> torn = full;
        fault::truncateAt(torn, keep);
        const JournalScan scan = support::scanJournal(torn);
        size_t expect_records = 0;
        uint64_t expect_prefix = 0;
        for (const JournalRecord &r : full_scan.records) {
            if (r.end_offset > keep)
                break;
            ++expect_records;
            expect_prefix = r.end_offset;
        }
        EXPECT_EQ(scan.records.size(), expect_records) << keep;
        EXPECT_EQ(scan.valid_prefix_bytes, expect_prefix) << keep;
        EXPECT_EQ(scan.clean, expect_prefix == keep) << keep;
    }

    // Open() on a torn file truncates the tail and keeps appending.
    const size_t mid = full_scan.records[2].end_offset + 5;
    std::vector<uint8_t> torn = full;
    fault::truncateAt(torn, mid);
    const std::string torn_path = dir.file("torn.jrnl");
    writeFile(torn_path, torn);

    Journal j;
    std::string error;
    size_t replayed = 0;
    ASSERT_TRUE(j.open(
        torn_path, {}, [&](const JournalRecord &) { ++replayed; },
        &error))
        << error;
    EXPECT_EQ(replayed, 3u);
    EXPECT_EQ(j.stats().truncated_bytes,
              mid - full_scan.records[2].end_offset);
    ASSERT_TRUE(j.append(42, payloadOf("after-recovery")));
    j.close();
    const JournalScan healed = support::scanJournalFile(torn_path);
    ASSERT_EQ(healed.records.size(), 4u);
    EXPECT_TRUE(healed.clean);
    EXPECT_EQ(healed.records.back().type, 42u);
}

TEST(Journal, CorruptionInvalidatesRecordAndSuffix)
{
    TempDir dir("journal-corrupt");
    const std::string path = dir.file("j.jrnl");
    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(path, {}, nullptr, &error)) << error;
        for (uint32_t i = 0; i < 4; ++i)
            ASSERT_TRUE(j.append(i + 1, payloadOf("payload-" +
                                                  std::to_string(i))));
        j.close();
    }
    const std::vector<uint8_t> full = readFile(path);
    const JournalScan full_scan = support::scanJournal(full);
    ASSERT_EQ(full_scan.records.size(), 4u);

    // A single flipped bit anywhere in record k (header or payload)
    // kills k and everything after it — validity is prefix-shaped.
    Rng rng(testutil::testSeed(67));
    for (size_t k = 0; k < 4; ++k) {
        const JournalRecord &target = full_scan.records[k];
        std::vector<uint8_t> damaged = full;
        const size_t offset =
            target.offset + static_cast<size_t>(rng.below(
                                target.end_offset - target.offset));
        fault::flipBitAt(damaged, offset,
                         static_cast<unsigned>(rng.below(8)));
        const JournalScan scan = support::scanJournal(damaged);
        EXPECT_EQ(scan.records.size(), k) << "record " << k;
        EXPECT_FALSE(scan.clean);
        EXPECT_EQ(scan.valid_prefix_bytes, target.offset);
    }
}

// ---------------------------------------------------------------------
// Report store: journaled ingest, every-prefix recovery, JSONL escaping
// ---------------------------------------------------------------------

TEST(ReportStoreRecovery, EveryJournalPrefixReconstructsExactly)
{
    TempDir dir("store-prefix");
    const std::string path = dir.file("reports.jrnl");

    // Drive a journaled store through a mixed ingest sequence,
    // snapshotting the JSONL after every call.
    std::vector<std::string> snapshots{""}; // snapshot[k] = after k calls
    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(path, {}, nullptr, &error)) << error;
        service::ReportStore store;
        store.bindJournal(&j);
        const detect::RaceReport r1 =
            reportOf({makeRace(10, 20, true, true, 0x1000)});
        const detect::RaceReport r2 =
            reportOf({makeRace(10, 20, true, true, 0x2000),
                      makeRace(33, 44, false, true, 0x3000)});
        const detect::RaceReport empty;
        store.ingest("alpha", "prog-a", r1, 1);
        snapshots.push_back(store.toJsonl());
        store.ingest("beta", "prog-a", r2, 2);
        snapshots.push_back(store.toJsonl());
        store.ingest("alpha", "prog-b", r1, 3);
        snapshots.push_back(store.toJsonl());
        store.ingest("gamma", "prog-a", empty, 4);
        snapshots.push_back(store.toJsonl());
        store.ingest("beta", "prog-a", r1, 5);
        snapshots.push_back(store.toJsonl());
        j.close();
    }

    const std::vector<uint8_t> bytes = readFile(path);
    const JournalScan scan = support::scanJournal(bytes);
    ASSERT_EQ(scan.records.size(), snapshots.size() - 1);

    // Replaying the first k records reconstructs the store exactly as
    // it was after the k-th ingest — the crash-recovery contract for a
    // crash that durably captured k records.
    for (size_t k = 0; k <= scan.records.size(); ++k) {
        service::ReportStore replayed;
        for (size_t i = 0; i < k; ++i) {
            ASSERT_EQ(scan.records[i].type, service::kReportIngestRecord);
            ASSERT_TRUE(
                replayed.applyIngestRecord(scan.records[i].payload));
        }
        EXPECT_EQ(replayed.toJsonl(), snapshots[k]) << "prefix " << k;
        EXPECT_EQ(replayed.maxSequence(), k) << "prefix " << k;
    }
}

TEST(ReportStoreRecovery, MalformedIngestRecordIsRejectedUnchanged)
{
    service::ReportStore store;
    const detect::RaceReport report =
        reportOf({makeRace(1, 2, true, false, 0x40)});
    std::vector<uint8_t> good = service::ReportStore::encodeIngestRecord(
        "tenant", "prog", report, 7);
    ASSERT_TRUE(store.applyIngestRecord(good));
    const std::string before = store.toJsonl();

    std::vector<uint8_t> truncated(good.begin(), good.end() - 3);
    EXPECT_FALSE(store.applyIngestRecord(truncated));
    std::vector<uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(store.applyIngestRecord(padded));
    std::vector<uint8_t> bad_version = good;
    bad_version[0] ^= 0xff;
    EXPECT_FALSE(store.applyIngestRecord(bad_version));
    EXPECT_EQ(store.toJsonl(), before);
    EXPECT_EQ(store.maxSequence(), 7u);
}

/** Inverse of jsonEscape, for round-trip checking. */
std::string
jsonUnescape(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        ++i;
        if (s[i] == 'u') {
            out += static_cast<char>(
                std::stoi(s.substr(i + 1, 4), nullptr, 16));
            i += 4;
        } else {
            out += s[i];
        }
    }
    return out;
}

TEST(ReportStoreRecovery, JsonlEscapingRoundTrips)
{
    const std::vector<std::string> nasty = {
        "plain",
        "has \"quotes\" inside",
        "back\\slash",
        "new\nline\ttab\rret",
        std::string("nul\0byte", 8),
        "\x01\x1f edge controls",
        "mix \"\\\n\" of everything",
    };
    for (const std::string &s : nasty) {
        const std::string escaped = service::jsonEscape(s);
        EXPECT_EQ(jsonUnescape(escaped), s);
        // No raw quote or control character survives: the JSONL line
        // framing cannot be broken by hostile ids.
        for (size_t i = 0; i < escaped.size(); ++i) {
            EXPECT_NE(escaped[i], '\n');
            if (escaped[i] == '"')
                EXPECT_TRUE(i > 0 && escaped[i - 1] == '\\');
        }
    }

    // End to end: a hostile program id goes through ingest + dump and
    // comes back out escaped on a single line.
    const std::string hostile = "prog\"id\nwith\\junk";
    service::ReportStore store;
    store.ingest("ten\"ant", hostile,
                 reportOf({makeRace(3, 4, true, true, 0x99)}), 1);
    const std::string jsonl = store.toJsonl();
    EXPECT_NE(jsonl.find(service::jsonEscape(hostile)),
              std::string::npos);
    // One entry, one line.
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);

    // And the journal codec carries the raw strings losslessly.
    const auto payload = service::ReportStore::encodeIngestRecord(
        "ten\"ant", hostile, reportOf({makeRace(3, 4, true, true, 0x99)}),
        1);
    service::ReportStore replayed;
    ASSERT_TRUE(replayed.applyIngestRecord(payload));
    EXPECT_EQ(replayed.toJsonl(), jsonl);
}

// ---------------------------------------------------------------------
// Detector checkpoint/restore identity (satellite: every subject)
// ---------------------------------------------------------------------

struct CapturedCheckpoint {
    uint64_t cursor = 0;
    uint64_t total = 0;
    std::vector<uint8_t> image;
};

/**
 * Run streaming analysis capturing a checkpoint at every batch
 * boundary, then re-run restored from randomized checkpoints and
 * demand the byte-identical report.
 */
void
expectCheckpointIdentity(const asmkit::Program &program,
                         const trace::RunTrace &trace,
                         const pmu::PtFilter &filter, uint64_t seed,
                         const std::string &label)
{
    core::OfflineOptions streaming;
    streaming.pt_filter = filter;
    streaming.incremental.enabled = true;
    streaming.incremental.batch_events = 256; // many boundaries
    streaming.incremental.gc_min_events = 64;

    std::vector<CapturedCheckpoint> checkpoints;
    core::OfflineOptions capture = streaming;
    capture.checkpoint.on_boundary =
        [&](uint64_t cursor, uint64_t total,
            detect::IncrementalFastTrack &detector) {
            ByteWriter w;
            detector.serializeState(w);
            checkpoints.push_back({cursor, total, w.take()});
        };
    core::OfflineAnalyzer base_analyzer(program, capture);
    const core::OfflineResult base = base_analyzer.analyze(trace);
    const std::string expected = base.report.format(&program);
    ASSERT_FALSE(checkpoints.empty()) << label;

    // Randomized restore positions: the first boundary, the end-of-feed
    // checkpoint, and a seeded-random interior one.
    Rng rng(seed);
    std::vector<size_t> picks = {0, checkpoints.size() - 1};
    if (checkpoints.size() > 2)
        picks.push_back(1 +
                        static_cast<size_t>(
                            rng.below(checkpoints.size() - 2)));
    for (const size_t pick : picks) {
        const CapturedCheckpoint &ckpt = checkpoints[pick];
        core::OfflineOptions resume = streaming;
        bool resumed = false;
        resume.checkpoint.restore = &ckpt.image;
        resume.checkpoint.resume_events = ckpt.cursor;
        resume.checkpoint.resume_feed_total = ckpt.total;
        resume.checkpoint.resumed = &resumed;
        core::OfflineAnalyzer analyzer(program, resume);
        const core::OfflineResult restored = analyzer.analyze(trace);
        EXPECT_TRUE(resumed)
            << label << ": checkpoint " << pick << " not applied";
        EXPECT_EQ(restored.report.format(&program), expected)
            << label << ": restore at feed cursor " << ckpt.cursor
            << "/" << ckpt.total << " diverged from uninterrupted run";
    }

    // An identity mismatch (wrong feed size) must cold-start, not
    // corrupt: resumed stays false and the report is still identical.
    const CapturedCheckpoint &last = checkpoints.back();
    core::OfflineOptions mismatch = streaming;
    bool resumed = false;
    mismatch.checkpoint.restore = &last.image;
    mismatch.checkpoint.resume_events = last.cursor;
    mismatch.checkpoint.resume_feed_total = last.total + 1;
    mismatch.checkpoint.resumed = &resumed;
    core::OfflineAnalyzer analyzer(program, mismatch);
    const core::OfflineResult cold = analyzer.analyze(trace);
    EXPECT_FALSE(resumed) << label;
    EXPECT_EQ(cold.report.format(&program), expected) << label;

    // A corrupt image likewise degrades to a cold start.
    if (!last.image.empty()) {
        std::vector<uint8_t> damaged = last.image;
        damaged.resize(damaged.size() / 2);
        core::OfflineOptions corrupt = streaming;
        bool resumed_corrupt = false;
        corrupt.checkpoint.restore = &damaged;
        corrupt.checkpoint.resume_events = last.cursor;
        corrupt.checkpoint.resume_feed_total = last.total;
        corrupt.checkpoint.resumed = &resumed_corrupt;
        core::OfflineAnalyzer c(program, corrupt);
        const core::OfflineResult cold2 = c.analyze(trace);
        EXPECT_FALSE(resumed_corrupt) << label;
        EXPECT_EQ(cold2.report.format(&program), expected) << label;
    }
}

TEST(CheckpointRestore, EveryRegistrySubject)
{
    const uint64_t seed = testutil::testSeed(71);
    PRORACE_SEED_TRACE(seed);
    for (const std::string &name : workload::allWorkloadNames()) {
        auto w = workload::findWorkload(name, 0.1);
        ASSERT_TRUE(w.has_value()) << name;
        core::PipelineConfig cfg =
            core::proRaceConfig(8, seed, w->pt_filter);
        cfg.session.run_baseline = false;
        core::RunArtifacts run =
            core::Session::run(*w->program, w->setup, cfg.session);
        expectCheckpointIdentity(*w->program, run.trace, w->pt_filter,
                                 seed + 1, name);
    }
}

TEST(CheckpointRestore, OracleBattery)
{
    const uint64_t seed = testutil::testSeed(73);
    PRORACE_SEED_TRACE(seed);
    for (const oracle::GeneratorConfig &cfg :
         oracle::standardBattery(seed, 3)) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc =
            core::proRaceConfig(6, seed + 7, gw.workload.pt_filter);
        pc.session.run_baseline = false;
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);
        expectCheckpointIdentity(*gw.workload.program, run.trace,
                                 gw.workload.pt_filter, seed + 13,
                                 gw.workload.name);
    }
}

TEST(CheckpointRestore, SyncVocabularyOracles)
{
    // The new sync families exercise rwlock read-clocks, semaphore
    // post queues, spinlock clocks, and atomic release chains; each
    // must survive checkpoint/restore at randomized boundaries with a
    // byte-identical report — racy and clean variants both.
    const uint64_t seed = testutil::testSeed(107);
    PRORACE_SEED_TRACE(seed);
    oracle::GeneratorConfig racy;
    racy.seed = seed;
    racy.threads = 4;
    racy.items = 40;
    racy.racy_sites = 0;
    racy.rw_racy_sites = 1;
    racy.sem_racy_sites = 1;
    racy.spin_racy_sites = 1;
    racy.relaxed_racy_sites = 1;
    oracle::GeneratorConfig clean = racy;
    clean.seed = seed + 1;
    clean.rw_racy_sites = clean.sem_racy_sites = 0;
    clean.spin_racy_sites = clean.relaxed_racy_sites = 0;
    clean.rw_locked_sites = 1;
    clean.sem_signal_sites = 1;
    clean.spin_locked_sites = 1;
    clean.relacq_sites = 1;
    for (const oracle::GeneratorConfig &cfg : {racy, clean}) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc =
            core::proRaceConfig(6, seed + 3, gw.workload.pt_filter);
        pc.session.run_baseline = false;
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);
        expectCheckpointIdentity(*gw.workload.program, run.trace,
                                 gw.workload.pt_filter, seed + 17,
                                 gw.workload.name);
    }
}

TEST(CheckpointRestore, RwSharedAndSemStateSurviveGcBoundary)
{
    // Checkpoint taken at a GC-enabled batch boundary while a granule
    // is rwlock read-shared and a semaphore has undelivered posts; the
    // restored detector must agree with the original on any seeded
    // continuation — same races AND byte-identical final state.
    detect::IncrementalOptions options;
    options.enabled = true;
    options.enable_gc = true;
    options.gc_min_events = 0; // sweep at every boundary
    for (uint64_t seed : testutil::testSeeds({401ull, 409ull, 419ull})) {
        PRORACE_SEED_TRACE(seed);
        detect::IncrementalFastTrack a(options);
        for (uint32_t t = 0; t < 4; ++t)
            a.requireThread(t);
        for (uint32_t t = 1; t < 4; ++t)
            a.fork(0, t);
        // Live read-shared state: three rwlock readers, no writer yet.
        for (uint32_t t = 1; t < 4; ++t) {
            a.readLock(t, 0xa000);
            detect::MemAccess ma;
            ma.tid = t;
            ma.addr = 0x1000;
            ma.is_write = false;
            ma.insn_index = t;
            ma.tsc = 10 + t;
            a.access(ma);
            a.readUnlock(t, 0xa000);
        }
        // Live semaphore state: two posts queued, none consumed.
        a.semInit(0, 0xb000, 0);
        a.semPost(1, 0xb000);
        a.semPost(2, 0xb000);
        a.batchBoundary(100); // GC sweeps here with both structures live

        ByteWriter w;
        a.serializeState(w);
        detect::IncrementalFastTrack b(options);
        ByteReader r(w.bytes());
        ASSERT_TRUE(b.restoreState(r)) << "seed " << seed;

        // Identical seeded continuation over both detectors, mixing
        // the new primitives with plain accesses.
        Rng rng(seed);
        for (uint64_t i = 0; i < 600; ++i) {
            const uint32_t tid = static_cast<uint32_t>(rng.below(4));
            const uint64_t op = rng.below(10);
            const uint64_t obj = 0xa000 + 0x100 * rng.below(2);
            const uint64_t addr = 0x1000 + 8 * rng.below(4);
            const uint32_t insn =
                8 + static_cast<uint32_t>(rng.below(48));
            const bool is_write = rng.below(2) == 0;
            for (detect::IncrementalFastTrack *ft : {&a, &b}) {
                switch (op) {
                  case 0: ft->readLock(tid, obj); break;
                  case 1: ft->readUnlock(tid, obj); break;
                  case 2: ft->writeLock(tid, obj); break;
                  case 3: ft->writeUnlock(tid, obj); break;
                  case 4: ft->semWait(tid, 0xb000); break;
                  case 5: ft->semPost(tid, 0xb000); break;
                  case 6: ft->acquireRelease(tid, 0xc000); break;
                  default: {
                      detect::MemAccess ma;
                      ma.tid = tid;
                      ma.addr = addr;
                      ma.is_write = is_write;
                      ma.insn_index = insn;
                      ma.tsc = 200 + i;
                      ft->access(ma);
                      break;
                  }
                }
            }
            if (i % 128 == 127) {
                a.batchBoundary(200 + i);
                b.batchBoundary(200 + i);
            }
        }
        a.finish();
        b.finish();
        EXPECT_EQ(a.report().format(nullptr), b.report().format(nullptr))
            << "seed " << seed;
        ByteWriter wa, wb;
        a.serializeState(wa);
        b.serializeState(wb);
        EXPECT_EQ(wa.bytes(), wb.bytes()) << "seed " << seed;
    }
}

TEST(CheckpointRestore, SerializedStateRoundTripsByteIdentically)
{
    detect::IncrementalOptions options;
    options.enabled = true;
    options.gc_min_events = 0;
    detect::IncrementalFastTrack a(options);
    a.requireThread(0);
    a.requireThread(1);
    a.fork(0, 1);
    detect::MemAccess ma;
    ma.tid = 1;
    ma.addr = 0x2000;
    ma.is_write = true;
    ma.insn_index = 2;
    ma.tsc = 11;
    a.access(ma);
    a.release(1, 0x9000);
    a.acquire(0, 0x9000);
    a.batchBoundary(50);

    ByteWriter w1;
    a.serializeState(w1);

    detect::IncrementalFastTrack b(options);
    ByteReader r(w1.bytes());
    ASSERT_TRUE(b.restoreState(r));
    ByteWriter w2;
    b.serializeState(w2);
    EXPECT_EQ(w1.bytes(), w2.bytes());

    // Garbage never restores — and leaves the detector untouched.
    std::vector<uint8_t> garbage = fault::poisonStream(64, 5);
    ByteReader bad(garbage);
    EXPECT_FALSE(b.restoreState(bad));
    ByteWriter w3;
    b.serializeState(w3);
    EXPECT_EQ(w1.bytes(), w3.bytes());

    // Both detectors see the same continuation and report identically.
    for (detect::IncrementalFastTrack *ft : {&a, &b}) {
        detect::MemAccess racy;
        racy.tid = 0;
        racy.addr = 0x3000;
        racy.is_write = true;
        racy.insn_index = 5;
        racy.tsc = 60;
        ft->access(racy);
        racy.tid = 1;
        racy.insn_index = 6;
        racy.tsc = 61;
        ft->access(racy);
        ft->finish();
    }
    EXPECT_EQ(a.report().format(nullptr), b.report().format(nullptr));
}

// ---------------------------------------------------------------------
// Stream identity (checkpoint matching key)
// ---------------------------------------------------------------------

TEST(StreamIdentity, IndependentOfChunking)
{
    const uint64_t seed = testutil::testSeed(79);
    const std::vector<uint8_t> bytes = fault::poisonStream(10000, seed);

    trace::TraceReader whole("whole");
    whole.feed(bytes);
    trace::TraceReader chunked("chunked");
    Rng rng(seed + 1);
    for (size_t off = 0; off < bytes.size();) {
        const size_t len = std::min<size_t>(
            1 + static_cast<size_t>(rng.below(777)), bytes.size() - off);
        chunked.feed(bytes.data() + off, len);
        off += len;
    }
    EXPECT_EQ(whole.streamBytes(), bytes.size());
    EXPECT_EQ(whole.streamBytes(), chunked.streamBytes());
    EXPECT_EQ(whole.streamCrc(), chunked.streamCrc());

    // One flipped bit changes the identity.
    std::vector<uint8_t> other = bytes;
    fault::flipBitAt(other, bytes.size() / 2, 3);
    trace::TraceReader different("different");
    different.feed(other);
    EXPECT_NE(whole.streamCrc(), different.streamCrc());
}

// ---------------------------------------------------------------------
// Service: restart recovery, warm starts, supervision, quarantine
// ---------------------------------------------------------------------

service::ServiceOptions
durableOptions(const std::string &state_dir, const pmu::PtFilter &filter)
{
    service::ServiceOptions options;
    options.num_workers = 2;
    options.offline.pt_filter = filter;
    options.offline.incremental.batch_events = 256;
    options.offline.incremental.gc_min_events = 64;
    options.state_dir = state_dir;
    options.supervision.backoff_initial_seconds = 0.001;
    return options;
}

TEST(ServiceRecovery, RestartRecoversStoreAndWarmStartsResubmission)
{
    const uint64_t seed = testutil::testSeed(83);
    PRORACE_SEED_TRACE(seed);
    TempDir dir("svc-recovery");
    const Recorded rec = recordWorkload("aget-bug2", 0.3, 8, seed);

    std::string jsonl_before;
    std::string expected_report;
    uint64_t sequence_before = 0;
    {
        service::AnalysisService svc(
            durableOptions(dir.path, rec.filter));
        svc.registerProgram("aget-bug2", rec.program);
        const uint64_t id = svc.openSession("tenant-a", "aget-bug2");
        ASSERT_NE(id, 0u);
        streamSession(svc, id, rec.bytes);
        svc.drain();

        const auto outcomes = svc.outcomes();
        ASSERT_EQ(outcomes.size(), 1u);
        EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
        EXPECT_FALSE(outcomes[0].warm_started); // nothing to resume yet
        EXPECT_GT(outcomes[0].checkpoints_written, 0u);
        expected_report = outcomes[0].report.format(rec.program.get());
        sequence_before = outcomes[0].sequence;

        const service::ServiceStats stats = svc.stats();
        EXPECT_TRUE(stats.durable);
        EXPECT_EQ(stats.recovered_reports, 0u);
        EXPECT_GT(stats.journal.appended_records, 0u);
        EXPECT_GT(stats.distinct_races, 0u);
        jsonl_before = svc.store().toJsonl();
        svc.shutdown();
    }
    ASSERT_FALSE(jsonl_before.empty());

    // Restart on the same state dir: the store comes back
    // byte-identically and sequence numbering continues above the
    // recovered maximum.
    service::AnalysisService svc(durableOptions(dir.path, rec.filter));
    svc.registerProgram("aget-bug2", rec.program);
    const service::ServiceStats boot = svc.stats();
    EXPECT_TRUE(boot.durable);
    EXPECT_EQ(boot.recovered_reports, 1u);
    EXPECT_EQ(svc.store().toJsonl(), jsonl_before);
    EXPECT_EQ(svc.store().maxSequence(), sequence_before);

    // The same tenant re-streams the same bytes: the analysis
    // warm-starts from the checkpoint the first process wrote, and the
    // report is still byte-identical.
    const uint64_t id = svc.openSession("tenant-a", "aget-bug2");
    ASSERT_NE(id, 0u);
    streamSession(svc, id, rec.bytes);
    svc.drain();
    const auto outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_TRUE(outcomes[0].warm_started);
    EXPECT_GT(outcomes[0].sequence, sequence_before);
    EXPECT_EQ(outcomes[0].report.format(rec.program.get()),
              expected_report);
    EXPECT_EQ(svc.tenantStats().at("tenant-a").warm_starts, 1u);

    // Both observations of every race are now in the recovered store.
    for (const service::StoredRace &row : svc.store().query())
        EXPECT_EQ(row.observations, 2u);
    svc.shutdown();
}

TEST(ServiceRecovery, TornJournalTailRecoversValidPrefix)
{
    TempDir dir("svc-torn");
    const std::string path = dir.file("reports.jrnl");

    // Forge a journal: two good records, then a torn third.
    std::vector<std::string> snapshots;
    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(path, {}, nullptr, &error)) << error;
        service::ReportStore store;
        store.bindJournal(&j);
        store.ingest("a", "p", reportOf({makeRace(1, 2, true, true, 8)}),
                     1);
        snapshots.push_back(store.toJsonl());
        store.ingest("b", "p", reportOf({makeRace(3, 4, true, true, 8)}),
                     2);
        snapshots.push_back(store.toJsonl());
        store.ingest("c", "p", reportOf({makeRace(5, 6, true, true, 8)}),
                     3);
        j.close();
    }
    std::vector<uint8_t> bytes = readFile(path);
    const JournalScan scan = support::scanJournal(bytes);
    ASSERT_EQ(scan.records.size(), 3u);
    fault::truncateAt(bytes,
                      static_cast<size_t>(scan.records[2].end_offset) - 4);
    writeFile(path, bytes);

    // A service booting on this state dir recovers exactly the two
    // whole records; the torn third is truncated away, not replayed.
    service::ServiceOptions options;
    options.state_dir = dir.path;
    service::AnalysisService svc(options);
    const service::ServiceStats stats = svc.stats();
    EXPECT_TRUE(stats.durable);
    EXPECT_EQ(stats.recovered_reports, 2u);
    EXPECT_GT(stats.journal.truncated_bytes, 0u);
    EXPECT_EQ(svc.store().toJsonl(), snapshots[1]);
    EXPECT_EQ(svc.store().maxSequence(), 2u);
    svc.shutdown();
}

TEST(Supervision, TransientFaultIsRetriedToSuccess)
{
    const uint64_t seed = testutil::testSeed(89);
    PRORACE_SEED_TRACE(seed);
    const Recorded rec = recordWorkload("aget-bug2", 0.2, 8, seed);

    service::ServiceOptions options;
    options.offline.pt_filter = rec.filter;
    options.supervision.backoff_initial_seconds = 0.001;
    std::atomic<unsigned> injections{0};
    options.analysis_fault_injector = [&](const std::string &, uint64_t,
                                          unsigned attempt) {
        if (attempt == 0) {
            ++injections;
            throw std::runtime_error("injected transient fault");
        }
    };
    service::AnalysisService svc(options);
    svc.registerProgram("aget-bug2", rec.program);
    const uint64_t id = svc.openSession("flaky", "aget-bug2");
    ASSERT_NE(id, 0u);
    streamSession(svc, id, rec.bytes);
    svc.drain();

    const auto outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_FALSE(outcomes[0].quarantined);
    EXPECT_EQ(injections, 1u);
    const auto ts = svc.tenantStats().at("flaky");
    EXPECT_EQ(ts.analysis_retries, 1u);
    EXPECT_EQ(ts.sessions_completed, 1u);
    EXPECT_EQ(ts.sessions_quarantined, 0u);
    svc.shutdown();
}

TEST(Supervision, PersistentFaultQuarantinesSessionThenTenant)
{
    const uint64_t seed = testutil::testSeed(97);
    PRORACE_SEED_TRACE(seed);
    const Recorded rec = recordWorkload("aget-bug2", 0.2, 8, seed);

    service::ServiceOptions options;
    options.offline.pt_filter = rec.filter;
    options.supervision.max_retries = 1;
    options.supervision.backoff_initial_seconds = 0.001;
    options.supervision.tenant_quarantine_strikes = 1;
    options.analysis_fault_injector = [](const std::string &tenant,
                                         uint64_t, unsigned) {
        if (tenant == "poisoned")
            throw std::runtime_error("injected persistent fault");
    };
    service::AnalysisService svc(options);
    svc.registerProgram("aget-bug2", rec.program);

    const uint64_t bad = svc.openSession("poisoned", "aget-bug2");
    ASSERT_NE(bad, 0u);
    streamSession(svc, bad, rec.bytes);
    const uint64_t good = svc.openSession("healthy", "aget-bug2");
    ASSERT_NE(good, 0u);
    streamSession(svc, good, rec.bytes);
    svc.drain();

    // The poisoned session exhausted its retries and was quarantined;
    // one strike quarantines the tenant.
    const auto outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(), 2u);
    for (const service::SessionOutcome &o : outcomes) {
        if (o.tenant == "poisoned") {
            EXPECT_FALSE(o.ok);
            EXPECT_TRUE(o.quarantined);
            EXPECT_EQ(o.attempts, 2u); // first try + max_retries
            EXPECT_NE(o.error.find("quarantined"), std::string::npos);
        } else {
            EXPECT_TRUE(o.ok) << o.error;
        }
    }
    EXPECT_TRUE(svc.tenantQuarantined("poisoned"));
    EXPECT_FALSE(svc.tenantQuarantined("healthy"));
    const auto tenants = svc.tenantStats();
    EXPECT_EQ(tenants.at("poisoned").sessions_quarantined, 1u);
    EXPECT_TRUE(tenants.at("poisoned").quarantined);
    EXPECT_EQ(tenants.at("healthy").sessions_completed, 1u);

    // Further opens from the quarantined tenant are rejected; the
    // healthy tenant keeps flowing.
    EXPECT_EQ(svc.openSession("poisoned", "aget-bug2"), 0u);
    EXPECT_NE(svc.openSession("healthy", "aget-bug2"), 0u);
    const service::ServiceStats stats = svc.stats();
    EXPECT_EQ(stats.tenants_quarantined, 1u);
    EXPECT_GE(stats.quarantine_rejected_opens, 1u);
    svc.shutdown();
}

TEST(Supervision, DeadlineTimeoutCountsAndQuarantines)
{
    const uint64_t seed = testutil::testSeed(101);
    PRORACE_SEED_TRACE(seed);
    const Recorded rec = recordWorkload("aget-bug2", 0.2, 8, seed);

    service::ServiceOptions options;
    options.offline.pt_filter = rec.filter;
    options.offline.incremental.batch_events = 64; // many tick points
    options.supervision.session_deadline_seconds = 1e-9; // always over
    options.supervision.max_retries = 1;
    options.supervision.backoff_initial_seconds = 0.001;
    service::AnalysisService svc(options);
    svc.registerProgram("aget-bug2", rec.program);
    const uint64_t id = svc.openSession("slow", "aget-bug2");
    ASSERT_NE(id, 0u);
    streamSession(svc, id, rec.bytes);
    svc.drain();

    const auto outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[0].quarantined);
    EXPECT_EQ(outcomes[0].deadline_timeouts, 2u); // both attempts
    EXPECT_EQ(svc.tenantStats().at("slow").deadline_timeouts, 2u);
    svc.shutdown();
}

TEST(Supervision, HardTraceErrorFailsFastWithoutRetry)
{
    service::ServiceOptions options;
    options.supervision.backoff_initial_seconds = 0.001;
    std::atomic<unsigned> injections{0};
    options.analysis_fault_injector =
        [&](const std::string &, uint64_t, unsigned) { ++injections; };
    service::AnalysisService svc(options);
    auto rec = recordWorkload("aget-bug2", 0.1, 16, testutil::testSeed(3));
    svc.registerProgram("aget-bug2", rec.program);

    const uint64_t id = svc.openSession("garbage", "aget-bug2");
    ASSERT_NE(id, 0u);
    streamSession(svc, id, fault::poisonStream(1 << 14, 11));
    svc.drain();

    const auto outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[0].quarantined); // deterministic: no strikes
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_EQ(injections, 0u); // analysis never started
    const auto ts = svc.tenantStats().at("garbage");
    EXPECT_EQ(ts.sessions_failed, 1u);
    EXPECT_EQ(ts.sessions_quarantined, 0u);
    EXPECT_EQ(ts.analysis_retries, 0u);
    svc.shutdown();
}

TEST(FleetSimulator, PoisonTenantsDegradeIntoStatistics)
{
    service::FleetConfig cfg;
    cfg.producers = 2;
    cfg.sessions_per_producer = 2;
    cfg.subjects = {"aget-bug2"};
    cfg.scale = 0.3;
    cfg.period = 8;
    cfg.seed = testutil::testSeed(53); // the smoke-test seed: samples
                                       // the aget race at this scale
    cfg.poison_producers = 1;
    cfg.service.num_workers = 2;
    cfg.service.supervision.backoff_initial_seconds = 0.001;
    const service::FleetResult result = service::runFleet(cfg);

    // The healthy fleet is untouched by the poison tenant...
    EXPECT_EQ(result.sessions_opened, 4u);
    EXPECT_EQ(result.poison_sessions, 2u);
    EXPECT_GT(result.stats.distinct_races, 0u);
    uint64_t healthy_completed = 0, poison_failed = 0;
    for (const auto &[name, ts] : result.tenants) {
        if (name.rfind("poison-", 0) == 0) {
            EXPECT_EQ(ts.sessions_completed, 0u) << name;
            poison_failed += ts.sessions_failed;
        } else {
            EXPECT_EQ(ts.sessions_failed, 0u) << name;
            healthy_completed += ts.sessions_completed;
        }
    }
    EXPECT_EQ(healthy_completed, 4u);
    // ... and every poison session failed without taking the run down.
    EXPECT_EQ(poison_failed, result.poison_sessions);
    EXPECT_EQ(result.stats.rollup.sessions_completed, 4u);
}

} // namespace
} // namespace prorace

/**
 * @file
 * Differential lint of the static fact tables against the VM itself:
 * execute programs on vm::Machine with the oracle logs on and check
 * that what the machine *actually did* is covered by what the analysis
 * *claims* an instruction may do —
 *
 *  - every observed register change between two memory events of a
 *    thread lies inside the union of the kill masks of the
 *    instructions retired in between (a kill-mask hole here would
 *    silently corrupt backward replay and alignment);
 *  - the number of memory events each retired instruction produced
 *    matches the static memOpCount (exactly, except kCas which may
 *    retire one or two);
 *  - every access the machine performed at a site the escape analysis
 *    calls thread-local landed inside the executing thread's own stack
 *    region (the empirical face of the prefilter soundness argument).
 *
 * Subjects: the branchy two-worker program and fuzzer-style random
 * straight-line programs. Seeded via testutil::testSeed, so any CI
 * failure reproduces with PRORACE_TEST_SEED=<seed>.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/analysis.hh"
#include "asmkit/layout.hh"
#include "support/rng.hh"
#include "testutil.hh"
#include "vm/hooks.hh"
#include "workload/registry.hh"

namespace prorace::analysis {
namespace {

using asmkit::Program;
using isa::AluOp;
using isa::Insn;
using isa::MemOperand;
using isa::Op;
using isa::Reg;
using testutil::makeBranchyProgram;

/** Register-file snapshot taken at each memory event's retirement. */
struct Snapshot {
    uint32_t insn_index = 0;
    uint64_t gpr[isa::kNumGprs] = {};
};

/** Observer capturing the before-instruction register file per event. */
class SnapshotObserver : public vm::ExecutionObserver
{
  public:
    uint64_t
    onMemOp(const vm::MemOpEvent &ev) override
    {
        Snapshot s;
        s.insn_index = ev.insn_index;
        for (unsigned r = 0; r < isa::kNumGprs; ++r)
            s.gpr[r] = ev.regs->gpr[r];
        by_tid[ev.tid].push_back(s);
        return 0;
    }

    std::map<uint32_t, std::vector<Snapshot>> by_tid;
};

/**
 * Run @p program with the oracle logs and the snapshot observer and
 * lint every thread's event stream against the analysis tables.
 */
void
lintProgram(const Program &program, uint64_t seed)
{
    const ProgramAnalysis pa(program);

    vm::MachineConfig mcfg;
    mcfg.seed = seed;
    mcfg.record_memory_log = true;
    mcfg.record_path_log = true;
    vm::Machine machine(program, mcfg);
    SnapshotObserver observer;
    machine.setObserver(&observer);
    machine.addThread("main");
    machine.run();

    const auto paths = testutil::oraclePaths(machine);

    // Group the memory log per thread, preserving order.
    std::map<uint32_t, std::vector<vm::MemoryLogEntry>> log_by_tid;
    for (const vm::MemoryLogEntry &e : machine.memoryLog())
        log_by_tid[e.tid].push_back(e);

    for (const auto &[tid, log] : log_by_tid) {
        const auto &snaps = observer.by_tid[tid];
        const auto &path = paths.at(tid);
        ASSERT_EQ(snaps.size(), log.size()) << "tid " << tid;

        // Per-insn memory-event counts vs the static table: group
        // consecutive events by retirement position, then compare each
        // group's size (kCas may retire with one or two events).
        std::map<uint64_t, unsigned> events_per_retire;
        for (const vm::MemoryLogEntry &e : log)
            ++events_per_retire[e.retire_index];
        for (const auto &[pos, count] : events_per_retire) {
            ASSERT_LT(pos, path.size());
            const uint32_t insn = path[pos];
            const unsigned want = pa.facts(insn).mem_ops;
            if (program.insnAt(insn).op == Op::kCas) {
                EXPECT_GE(count, 1u) << "insn " << insn;
                EXPECT_LE(count, want) << "insn " << insn;
            } else {
                EXPECT_EQ(count, want) << "insn " << insn;
            }
        }

        for (size_t j = 0; j < log.size(); ++j) {
            // The log's retire_index is the thread-path position of the
            // instruction that produced the event.
            ASSERT_LT(log[j].retire_index, path.size());
            ASSERT_EQ(path[log[j].retire_index], log[j].insn_index);
            ASSERT_EQ(snaps[j].insn_index, log[j].insn_index);

            // Thread-local sites must access the own stack region.
            if (pa.siteThreadLocal(log[j].insn_index)) {
                const uint64_t top = asmkit::stackTopFor(tid);
                EXPECT_LE(log[j].addr, top);
                EXPECT_GT(log[j].addr + log[j].width,
                          top - asmkit::kStackRegion)
                    << "thread-local access off tid " << tid
                    << "'s stack at insn " << log[j].insn_index;
            }

            // Register-diff coverage between consecutive snapshots.
            if (j == 0)
                continue;
            const uint64_t lo = log[j - 1].retire_index;
            const uint64_t hi = log[j].retire_index;
            uint16_t allowed = 0;
            for (uint64_t p = lo; p < hi; ++p)
                allowed |= pa.facts(static_cast<uint32_t>(path[p])).kill;
            if (lo == hi) {
                // Two events of one instruction (atomics): its own
                // write-back may land between the two reports.
                allowed |=
                    pa.facts(static_cast<uint32_t>(path[lo])).kill;
            }
            for (unsigned r = 0; r < isa::kNumGprs; ++r) {
                if (snaps[j].gpr[r] != snaps[j - 1].gpr[r]) {
                    EXPECT_TRUE(allowed & (1u << r))
                        << "register " << isa::regName(
                               isa::gprFromIndex(r))
                        << " changed across path [" << lo << ", " << hi
                        << ") without a kill bit (tid " << tid << ")";
                }
            }
        }
    }
}

TEST(StaticLint, BranchyProgramCoverage)
{
    const Program program = makeBranchyProgram(40);
    for (const uint64_t seed : testutil::testSeeds({2, 13})) {
        PRORACE_SEED_TRACE(seed);
        lintProgram(program, seed);
    }
}

// ---------------------------------------------------------------------
// Fuzzer-style random straight-line programs: every opcode class with
// a memory event or a register write, safe to execute single-threaded.
// ---------------------------------------------------------------------

Reg
randomGpr(Rng &rng)
{
    // Avoid rsp so the generated program keeps its stack intact.
    static const Reg kPool[] = {Reg::rax, Reg::rbx, Reg::rcx, Reg::rdx,
                                Reg::rsi, Reg::rdi, Reg::rbp, Reg::r8,
                                Reg::r9,  Reg::r10, Reg::r11, Reg::r12,
                                Reg::r13, Reg::r14, Reg::r15};
    return kPool[rng.below(sizeof(kPool) / sizeof(kPool[0]))];
}

Program
randomProgram(Rng &rng, uint64_t data_base)
{
    std::vector<Insn> code;
    // Point a couple of registers at scratch globals.
    Insn init;
    init.op = Op::kMovRI;
    init.dst = Reg::rsi;
    init.imm = static_cast<int64_t>(data_base);
    code.push_back(init);

    const unsigned n = 12 + static_cast<unsigned>(rng.below(20));
    for (unsigned u = 0; u < n; ++u) {
        switch (rng.below(8)) {
          case 0: { // alu immediate
            Insn i;
            i.op = Op::kAluRI;
            i.alu = static_cast<AluOp>(rng.below(6));
            i.dst = randomGpr(rng);
            i.imm = static_cast<int64_t>(rng.below(1 << 16));
            code.push_back(i);
            break;
          }
          case 1: { // alu reg-reg
            Insn i;
            i.op = Op::kAluRR;
            i.alu = static_cast<AluOp>(rng.below(6));
            i.dst = randomGpr(rng);
            i.src = randomGpr(rng);
            code.push_back(i);
            break;
          }
          case 2: { // store to scratch
            Insn i;
            i.op = Op::kStore;
            i.src = randomGpr(rng);
            i.mem = MemOperand::baseDisp(
                Reg::rsi, static_cast<int64_t>(rng.below(64)) * 8);
            code.push_back(i);
            break;
          }
          case 3: { // load from scratch
            Insn i;
            i.op = Op::kLoad;
            i.dst = randomGpr(rng);
            i.mem = MemOperand::baseDisp(
                Reg::rsi, static_cast<int64_t>(rng.below(64)) * 8);
            code.push_back(i);
            break;
          }
          case 4: { // balanced push/pop
            Insn p;
            p.op = Op::kPush;
            p.src = randomGpr(rng);
            code.push_back(p);
            Insn q;
            q.op = Op::kPop;
            q.dst = randomGpr(rng);
            code.push_back(q);
            break;
          }
          case 5: { // atomic rmw on scratch
            Insn i;
            i.op = Op::kAtomicRmw;
            i.alu = AluOp::kAdd;
            i.dst = randomGpr(rng);
            i.src = randomGpr(rng);
            i.mem = MemOperand::baseDisp(
                Reg::rsi, static_cast<int64_t>(rng.below(64)) * 8);
            code.push_back(i);
            break;
          }
          case 6: { // cas on scratch
            Insn i;
            i.op = Op::kCas;
            i.dst = randomGpr(rng);
            i.src = randomGpr(rng);
            i.mem = MemOperand::baseDisp(
                Reg::rsi, static_cast<int64_t>(rng.below(64)) * 8);
            code.push_back(i);
            break;
          }
          default: { // mov
            Insn i;
            i.op = rng.chance(0.5) ? Op::kMovRR : Op::kMovRI;
            i.dst = randomGpr(rng);
            if (i.op == Op::kMovRR)
                i.src = randomGpr(rng);
            else
                i.imm = static_cast<int64_t>(rng.below(1 << 20));
            code.push_back(i);
            break;
          }
        }
    }
    Insn halt;
    halt.op = Op::kHalt;
    code.push_back(halt);
    return Program(code, {{"main", 0}}, {},
                   {{"main", 0, static_cast<uint32_t>(code.size())}});
}

// ---------------------------------------------------------------------
// Points-to lint: execute real workloads and check that every claim
// the Andersen layer makes holds for what the machine actually did —
//
//  - no thread but the allocator ever touches a live block of an
//    allocation site the solver calls thread-local (a cross-thread
//    access into a claimed-local object would mean the heap prefilter
//    can silently drop a racing access: hard failure);
//  - no write ever lands in a range the solver calls immutable (replay
//    would recover a stale constant);
//  - every observed indirect-transfer target is inside the site's
//    resolved target set (a missed target would de-sharpen the CFG
//    unsoundly).
// ---------------------------------------------------------------------

/** One totally-ordered record of everything the machine did. */
struct PtTraceEvent {
    enum Kind { kAccess, kMalloc, kFree, kIndirect };
    Kind kind;
    uint32_t tid = 0;
    uint32_t insn_index = 0;
    uint64_t addr = 0;  ///< access address / block address / target
    uint64_t size = 0;  ///< access width / block size
    bool is_write = false;
};

/**
 * The VM single-steps under one global interleaving, so a plain
 * vector ordered by callback arrival is a faithful total order.
 */
class PtLintObserver : public vm::ExecutionObserver
{
  public:
    uint64_t
    onMemOp(const vm::MemOpEvent &ev) override
    {
        events.push_back({PtTraceEvent::kAccess, ev.tid, ev.insn_index,
                          ev.addr, ev.width, ev.is_write});
        return 0;
    }

    uint64_t
    onSync(const vm::SyncEvent &ev) override
    {
        if (ev.kind == vm::SyncKind::kMalloc) {
            events.push_back({PtTraceEvent::kMalloc, ev.tid,
                              ev.insn_index, ev.object, ev.aux, false});
        } else if (ev.kind == vm::SyncKind::kFree) {
            events.push_back({PtTraceEvent::kFree, ev.tid,
                              ev.insn_index, ev.object, 0, false});
        }
        return 0;
    }

    uint64_t
    onIndirectBranch(const vm::BranchEvent &ev) override
    {
        events.push_back({PtTraceEvent::kIndirect, ev.tid,
                          ev.insn_index, ev.target, 0, false});
        return 0;
    }

    std::vector<PtTraceEvent> events;
};

void
pointsToLint(const workload::Workload &w, uint64_t seed)
{
    const ProgramAnalysis pa(*w.program, true);
    const PointsTo *pt = pa.pointsTo();
    ASSERT_NE(pt, nullptr);

    vm::MachineConfig mcfg;
    mcfg.seed = seed;
    vm::Machine machine(*w.program, mcfg);
    PtLintObserver observer;
    machine.setObserver(&observer);
    w.setup(machine);
    machine.run();

    // Replay the total order, tracking live heap blocks (the allocator
    // reuses addresses, so a block is keyed by its [malloc, free)
    // lifetime, not its address alone).
    struct LiveBlock {
        uint32_t owner_tid;
        uint32_t site;
        uint64_t size;
    };
    std::map<uint64_t, LiveBlock> live; ///< block base → block
    uint64_t checked_local = 0, checked_indirect = 0;
    for (const PtTraceEvent &ev : observer.events) {
        switch (ev.kind) {
          case PtTraceEvent::kMalloc:
            live[ev.addr] = {ev.tid, ev.insn_index, ev.size};
            break;
          case PtTraceEvent::kFree:
            live.erase(ev.addr);
            break;
          case PtTraceEvent::kIndirect: {
            const auto it = pt->indirectTargets().find(ev.insn_index);
            if (it == pt->indirectTargets().end())
                break;
            ++checked_indirect;
            EXPECT_TRUE(std::find(it->second.begin(), it->second.end(),
                                  ev.addr) != it->second.end())
                << w.name << ": indirect transfer at insn "
                << ev.insn_index << " reached target " << ev.addr
                << " outside the resolved set";
            break;
          }
          case PtTraceEvent::kAccess: {
            if (ev.is_write) {
                EXPECT_FALSE(pt->immutableCovers(ev.addr, ev.size))
                    << w.name << ": write at insn " << ev.insn_index
                    << " hit a claimed-immutable range @" << std::hex
                    << ev.addr;
            }
            if (!pt->heapSound())
                break;
            // Find the live block containing the access, if any.
            const auto it = live.upper_bound(ev.addr);
            if (it == live.begin())
                break;
            const auto &[base, blk] = *std::prev(it);
            if (ev.addr >= base + blk.size)
                break;
            if (pt->allocSiteThreadLocal(blk.site)) {
                ++checked_local;
                EXPECT_EQ(ev.tid, blk.owner_tid)
                    << w.name << ": tid " << ev.tid << " accessed a "
                    << "claimed-thread-local block of site " << blk.site
                    << " owned by tid " << blk.owner_tid << " (insn "
                    << ev.insn_index << ")";
            }
            break;
          }
        }
    }

    // The lint must actually have exercised a claim on the dispatch
    // subject; on other workloads vacuous passes are fine.
    if (w.name == "ptr-dispatch") {
        EXPECT_GT(checked_local, 0u) << "no thread-local claim checked";
        EXPECT_GT(checked_indirect, 0u) << "no indirect claim checked";
    }
}

TEST(StaticLint, PointsToClaimsHoldOnDispatchWorkload)
{
    for (const uint64_t seed : testutil::testSeeds({5, 17})) {
        PRORACE_SEED_TRACE(seed);
        const auto w = workload::findWorkload("ptr-dispatch", 0.05);
        ASSERT_TRUE(w.has_value());
        pointsToLint(*w, seed);
    }
}

TEST(StaticLint, PointsToClaimsHoldAcrossRegistry)
{
    // A broad sweep at small scale: heap-churning and indirect-branch
    // subjects plus a representative mix of the sync vocabulary.
    const char *const kSubjects[] = {"mpmc-queue", "event-loop",
                                     "pfscan",     "apache",
                                     "memcached",  "kvchurn"};
    const uint64_t seed = testutil::testSeed(23);
    PRORACE_SEED_TRACE(seed);
    for (const char *name : kSubjects) {
        const auto w = workload::findWorkload(name, 0.02);
        if (!w.has_value())
            continue;
        pointsToLint(*w, seed);
    }
}

TEST(StaticLint, RandomProgramCoverage)
{
    // Scratch memory for the generated loads/stores: a fixed page in
    // the globals segment (memory is sparse first-touch, so no symbol
    // needs to back it).
    constexpr uint64_t kScratch = asmkit::kGlobalBase + 0x1000;
    for (const uint64_t seed : testutil::testSeeds({7, 21, 33})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        for (int p = 0; p < 8; ++p) {
            const Program program = randomProgram(rng, kScratch);
            lintProgram(program, seed + static_cast<uint64_t>(p));
        }
    }
}

} // namespace
} // namespace prorace::analysis

/**
 * @file
 * Tests for the static binary-analysis subsystem (src/analysis): CFG
 * recovery edge cases, dataflow fixpoints, escape-analysis soundness
 * gating, the detector prefilter's report-identity guarantee, and the
 * replayer's analysis-accelerated fast path producing bit-identical
 * reconstructions.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "analysis/analysis.hh"
#include "asmkit/layout.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "replay/static_info.hh"
#include "support/rng.hh"
#include "testutil.hh"
#include "workload/registry.hh"

namespace prorace::analysis {
namespace {

using asmkit::Program;
using asmkit::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;
using testutil::makeBranchyProgram;

// ---------------------------------------------------------------------
// Per-instruction facts: the table must agree with the replay layer's
// historical definitions (now forwarding wrappers) on every insn.
// ---------------------------------------------------------------------

TEST(InsnFacts, TableMatchesReplayStaticInfo)
{
    const Program program = makeBranchyProgram(10);
    const ProgramAnalysis pa(program);
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Insn &insn = program.insnAt(i);
        const InsnFacts &f = pa.facts(i);
        EXPECT_EQ(f.kill, replay::regWriteMask(insn)) << "insn " << i;
        EXPECT_EQ(f.mem_ops, replay::memOpCount(insn)) << "insn " << i;
        EXPECT_EQ(f.uses, regReadMask(insn)) << "insn " << i;
        // Invertible registers are written registers; learned registers
        // are, by definition, *not* written.
        EXPECT_EQ(f.invertible & ~f.kill, 0) << "insn " << i;
        EXPECT_EQ(f.learns & f.kill, 0) << "insn " << i;
    }
}

// ---------------------------------------------------------------------
// CFG edge cases
// ---------------------------------------------------------------------

TEST(Cfg, SingleBlockProgram)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax, 1);
    b.addri(Reg::rax, 2);
    b.halt();
    const Program program = b.build();

    const Cfg cfg(program);
    ASSERT_EQ(cfg.numBlocks(), 1u);
    EXPECT_TRUE(cfg.block(0).succs.empty());
    EXPECT_TRUE(cfg.block(0).reachable);
    EXPECT_TRUE(cfg.block(0).is_thread_entry);
    EXPECT_EQ(cfg.numEdges(), 0u);
    EXPECT_FALSE(cfg.hasIndirectTransfers());
}

TEST(Cfg, ProgramEndingWithoutRetOrHalt)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax, 1);
    b.cmpri(Reg::rax, 0);
    b.jcc(CondCode::kEq, "main");
    b.movri(Reg::rbx, 2); // program just ends here
    const Program program = b.build();

    const Cfg cfg(program);
    const uint32_t last = cfg.numBlocks() - 1;
    // The trailing block has no fall-through block to go to.
    EXPECT_TRUE(cfg.block(last).succs.empty());
    // Dataflow must treat the ragged end conservatively: everything
    // potentially live out, so nothing is wrongly proved dead.
    const ProgramAnalysis pa(program);
    EXPECT_EQ(pa.dataflow().block(last).live_out, 0xffff);
}

TEST(Cfg, UnreachableBlockIsFlagged)
{
    ProgramBuilder b;
    b.label("main");
    b.jmp("end");
    b.label("dead");
    b.movri(Reg::rax, 1);
    b.jmp("end");
    b.label("end");
    b.halt();
    const Program program = b.build();

    const Cfg cfg(program);
    const uint32_t dead = program.blockOf(1); // first insn of "dead"
    EXPECT_FALSE(cfg.block(dead).reachable);
    EXPECT_LT(cfg.numReachable(), cfg.numBlocks());
    // The dead block still has its edge into "end" recorded.
    ASSERT_EQ(cfg.block(dead).succs.size(), 1u);
}

TEST(Cfg, IndirectTransfersFanOutToAddressTaken)
{
    const Program program = makeBranchyProgram(10);
    const Cfg cfg(program);
    EXPECT_TRUE(cfg.hasIndirectTransfers());
    // The dispatch-table targets (movLabel immediates) are
    // address-taken, and everything address-taken is reachable because
    // a reachable indirect call exists.
    ASSERT_GE(cfg.addressTaken().size(), 2u);
    for (const uint32_t target : cfg.addressTaken()) {
        const uint32_t blk = program.blockOf(target);
        EXPECT_TRUE(cfg.block(blk).is_address_taken);
        EXPECT_TRUE(cfg.block(blk).unknown_entry);
        EXPECT_TRUE(cfg.block(blk).reachable) << "target " << target;
    }
    // The indirect-call block fans out to every address-taken block.
    bool found_callind = false;
    for (uint32_t i = 0; i < program.size(); ++i) {
        if (program.insnAt(i).op != isa::Op::kCallInd)
            continue;
        found_callind = true;
        const CfgBlock &blk = cfg.block(program.blockOf(i));
        for (const uint32_t target : cfg.addressTaken()) {
            const uint32_t tb = program.blockOf(target);
            EXPECT_NE(std::find(blk.succs.begin(), blk.succs.end(), tb),
                      blk.succs.end())
                << "missing edge to address-taken block " << tb;
        }
    }
    EXPECT_TRUE(found_callind);
}

TEST(Cfg, SpawnTargetsAreThreadEntries)
{
    const Program program = makeBranchyProgram(10);
    const Cfg cfg(program);
    bool found_spawn = false;
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Insn &insn = program.insnAt(i);
        if (insn.op != isa::Op::kSpawn)
            continue;
        found_spawn = true;
        const uint32_t tb = program.blockOf(insn.target);
        EXPECT_TRUE(cfg.block(tb).is_thread_entry);
        EXPECT_TRUE(cfg.block(tb).unknown_entry);
        EXPECT_TRUE(cfg.block(tb).reachable);
        // No intra-thread edge into the spawned entry from the spawn.
        const CfgBlock &sb = cfg.block(program.blockOf(i));
        EXPECT_EQ(std::find(sb.succs.begin(), sb.succs.end(), tb),
                  sb.succs.end());
    }
    EXPECT_TRUE(found_spawn);
}

TEST(Cfg, EdgesAreSymmetric)
{
    const Program program = makeBranchyProgram(10);
    const Cfg cfg(program);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        for (const uint32_t s : cfg.block(b).succs) {
            const auto &preds = cfg.block(s).preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(), b),
                      preds.end())
                << "edge " << b << "->" << s << " missing back-link";
        }
    }
}

// ---------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------

TEST(Dataflow, BlockKillIsUnionOfInsnKills)
{
    const Program program = makeBranchyProgram(10);
    const ProgramAnalysis pa(program);
    for (uint32_t b = 0; b < pa.cfg().numBlocks(); ++b) {
        uint16_t expect = 0;
        uint32_t mem = 0;
        for (uint32_t i = program.blockBegin(b); i < program.blockEnd(b);
             ++i) {
            expect |= pa.facts(i).kill;
            mem += pa.facts(i).mem_ops;
        }
        EXPECT_EQ(pa.blockKill(b), expect) << "block " << b;
        EXPECT_EQ(pa.dataflow().block(b).mem_ops, mem) << "block " << b;
    }
}

TEST(Dataflow, LivenessOnDiamond)
{
    ProgramBuilder b;
    b.global("out", 8);
    b.label("main");
    b.movri(Reg::rax, 1);
    b.cmpri(Reg::rax, 0);
    b.jcc(CondCode::kEq, "right");
    b.movrr(Reg::rbx, Reg::rax); // left: reads rax
    b.jmp("join");
    b.label("right");
    b.movri(Reg::rbx, 5); // right: rax dead here
    b.label("join");
    b.store(b.symRef("out"), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);

    const uint16_t rax = regBit(Reg::rax);
    const uint16_t rbx = regBit(Reg::rbx);
    // rax is live into the left arm (movrr reads it), not the right.
    bool saw_left = false, saw_right = false, saw_join = false;
    for (uint32_t blk = 0; blk < pa.cfg().numBlocks(); ++blk) {
        const isa::Insn &first = program.insnAt(program.blockBegin(blk));
        const BlockDataflow &df = pa.dataflow().block(blk);
        if (first.op == isa::Op::kMovRR) {
            saw_left = true;
            EXPECT_TRUE(df.live_in & rax);
        } else if (first.op == isa::Op::kMovRI &&
                   first.dst == Reg::rbx) {
            saw_right = true;
            EXPECT_FALSE(df.live_in & rax);
        } else if (first.op == isa::Op::kStore) {
            saw_join = true;
            EXPECT_TRUE(df.live_in & rbx);
        }
    }
    EXPECT_TRUE(saw_left && saw_right && saw_join);
}

TEST(Dataflow, ReachingDefsUniqueAmbiguousExternal)
{
    ProgramBuilder b;
    b.global("out", 8);
    b.label("main");
    const uint32_t def_a = b.movri(Reg::rax, 1); // unique def of rax
    b.movri(Reg::rcx, 0);
    b.cmpri(Reg::rcx, 0);
    b.jcc(CondCode::kEq, "right");
    b.movri(Reg::rbx, 2); // def 1 of rbx
    b.jmp("join");
    b.label("right");
    b.movri(Reg::rbx, 3); // def 2 of rbx
    b.label("join");
    b.store(b.symRef("out"), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);

    // At the join block: rax has the unique entry def, rbx is
    // ambiguous (two arms), and at the entry block everything is
    // external (thread entry).
    const unsigned ax = isa::gprIndex(Reg::rax);
    const unsigned bx = isa::gprIndex(Reg::rbx);
    const uint32_t entry = program.blockOf(0);
    EXPECT_EQ(pa.dataflow().block(entry).reach_in[ax].kind,
              ReachingDef::kExternal);
    bool saw_join = false;
    for (uint32_t blk = 0; blk < pa.cfg().numBlocks(); ++blk) {
        if (program.insnAt(program.blockBegin(blk)).op != isa::Op::kStore)
            continue;
        saw_join = true;
        const BlockDataflow &df = pa.dataflow().block(blk);
        EXPECT_EQ(df.reach_in[ax].kind, ReachingDef::kUnique);
        EXPECT_EQ(df.reach_in[ax].insn, def_a);
        EXPECT_EQ(df.reach_in[bx].kind, ReachingDef::kAmbiguous);
    }
    EXPECT_TRUE(saw_join);
}

// ---------------------------------------------------------------------
// Escape analysis
// ---------------------------------------------------------------------

TEST(Escape, BranchyProgramIsSoundWithThreadLocalSites)
{
    const Program program = makeBranchyProgram(10);
    const ProgramAnalysis pa(program);
    const EscapeAnalysis &ea = pa.escape();
    EXPECT_TRUE(ea.sound());
    EXPECT_GT(ea.numThreadLocal(), 0u);
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Op op = program.insnAt(i).op;
        if (op == isa::Op::kPush || op == isa::Op::kPop ||
            op == isa::Op::kCall || op == isa::Op::kCallInd ||
            op == isa::Op::kRet) {
            EXPECT_EQ(ea.site(i), SiteClass::kStackImplicit)
                << "insn " << i;
        }
        // The global accumulator store must stay may-shared.
        if (op == isa::Op::kStore) {
            EXPECT_EQ(ea.site(i), SiteClass::kMayShared) << "insn " << i;
        }
    }
}

TEST(Escape, FramePointerSpillsAreStackDirect)
{
    ProgramBuilder b;
    b.label("main");
    b.movrr(Reg::rbp, Reg::rsp);
    b.movri(Reg::rax, 7);
    b.store(MemOperand::baseDisp(Reg::rbp, -8), Reg::rax);
    b.load(Reg::rbx, MemOperand::baseDisp(Reg::rbp, -8));
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    ASSERT_TRUE(pa.escape().sound());
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Op op = program.insnAt(i).op;
        if (op == isa::Op::kStore || op == isa::Op::kLoad) {
            EXPECT_EQ(pa.escape().site(i), SiteClass::kStackDirect)
                << "insn " << i;
        }
    }
    EXPECT_EQ(pa.escape().numThreadLocal(), 2u);
}

TEST(Escape, StoredStackPointerKillsEverything)
{
    ProgramBuilder b;
    b.global("leak", 8);
    b.label("main");
    b.movrr(Reg::rbp, Reg::rsp);
    b.store(MemOperand::baseDisp(Reg::rbp, -8), Reg::rax); // local spill
    b.store(b.symRef("leak"), Reg::rbp); // stack pointer escapes!
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    EXPECT_TRUE(pa.escape().rspIntegrity());
    EXPECT_FALSE(pa.escape().noStackEscape());
    EXPECT_FALSE(pa.escape().sound());
    // Demotion: nothing is thread-local anymore, the spill included.
    EXPECT_EQ(pa.escape().numThreadLocal(), 0u);
    for (uint32_t i = 0; i < program.size(); ++i)
        EXPECT_FALSE(pa.siteThreadLocal(i));
}

TEST(Escape, ArbitraryRspWriteBreaksIntegrity)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rsp, 0x1000);
    b.push(Reg::rax);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    EXPECT_FALSE(pa.escape().rspIntegrity());
    EXPECT_FALSE(pa.escape().sound());
    EXPECT_EQ(pa.escape().numThreadLocal(), 0u);
}

TEST(Escape, ForgedStackImmediateBreaksNoEscape)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax,
            static_cast<int64_t>(asmkit::stackTopFor(1) - 64));
    b.store(MemOperand::baseDisp(Reg::rax, 0), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    EXPECT_FALSE(pa.escape().noStackEscape());
    EXPECT_EQ(pa.escape().numThreadLocal(), 0u);
}

TEST(Escape, LargeDisplacementIsNotThreadLocal)
{
    ProgramBuilder b;
    b.label("main");
    b.store(MemOperand::baseDisp(Reg::rsp, -(kMaxStackDisp + 8)),
            Reg::rax);
    b.store(MemOperand::baseDisp(Reg::rsp, -16), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    ASSERT_TRUE(pa.escape().sound());
    EXPECT_EQ(pa.escape().site(0), SiteClass::kMayShared);
    EXPECT_EQ(pa.escape().site(1), SiteClass::kStackDirect);
}

// ---------------------------------------------------------------------
// Replayer fast path: analysis-accelerated replay is bit-identical.
// ---------------------------------------------------------------------

/** Traced-run fixture (mirrors the one in test_replay.cc). */
struct Fixture {
    trace::RunTrace trace;
    std::map<uint32_t, pmu::ThreadPath> paths;
    std::map<uint32_t, replay::ThreadAlignment> alignments;

    Fixture(const Program &program, uint64_t period,
            const pmu::PtFilter &filter, uint64_t seed = 3)
    {
        vm::MachineConfig mcfg;
        mcfg.seed = seed;
        driver::TraceConfig tcfg;
        tcfg.pebs_period = period;
        tcfg.seed = seed + 100;
        tcfg.pt.filter = filter;

        vm::Machine machine(program, mcfg);
        driver::TracingSession tracing(tcfg, mcfg.num_cores);
        machine.setObserver(&tracing);
        machine.addThread("main");
        machine.run();
        trace = tracing.finish();
        for (uint32_t tid = 0; tid < machine.numThreads(); ++tid)
            trace.meta.threads.push_back(
                {tid, machine.thread(tid).entry_ip});
        paths = pmu::decodePt(program, filter, trace);
        alignments = replay::alignTrace(program, paths, trace);
    }
};

using AccessKey = std::tuple<uint32_t, uint64_t, uint32_t, uint64_t,
                             uint8_t, bool, bool, uint64_t, uint8_t>;

AccessKey
keyOf(const replay::ReconstructedAccess &a)
{
    return {a.tid,      a.position, a.insn_index,
            a.addr,     a.width,    a.is_write,
            a.is_atomic, a.tsc,
            static_cast<uint8_t>(a.origin)};
}

void
expectIdenticalReplay(const Program &program, const Fixture &fx)
{
    const ProgramAnalysis pa(program);
    replay::ReplayConfig base;
    replay::Replayer plain(program, base);
    const auto without =
        plain.replayAll(fx.paths, fx.alignments, fx.trace);

    replay::ReplayConfig accel;
    accel.analysis = &pa;
    replay::Replayer fast(program, accel);
    const auto with = fast.replayAll(fx.paths, fx.alignments, fx.trace);

    ASSERT_EQ(without.size(), with.size());
    for (size_t i = 0; i < without.size(); ++i)
        EXPECT_EQ(keyOf(without[i]), keyOf(with[i])) << "access " << i;
    EXPECT_EQ(plain.stats().totalAccesses(), fast.stats().totalAccesses());
    EXPECT_EQ(plain.stats().recovered_backward,
              fast.stats().recovered_backward);
    EXPECT_EQ(plain.stats().backward_rounds, fast.stats().backward_rounds);
}

TEST(ReplayFastPath, FullTraceIsBitIdentical)
{
    const Program program = makeBranchyProgram(80);
    for (const uint64_t seed : testutil::testSeeds({3, 11})) {
        PRORACE_SEED_TRACE(seed);
        const Fixture fx(program, 7, pmu::PtFilter::all(), seed);
        expectIdenticalReplay(program, fx);
    }
}

TEST(ReplayFastPath, PathGapWindowsAreBitIdentical)
{
    // Exclude the helper/dispatch functions from the PT filter so the
    // decoded paths contain kPathGap runs; the block-skip fast path
    // must handle gap-bearing windows identically.
    const Program program = makeBranchyProgram(60);
    pmu::PtFilter filter; // empty: admits nothing until ranges are added
    for (const asmkit::Function &fn : program.functions()) {
        if (fn.name == "main" || fn.name == "worker")
            filter.addRange(fn.begin, fn.end);
    }
    const Fixture fx(program, 5, filter, 9);
    bool has_gap = false;
    for (const auto &[tid, path] : fx.paths)
        for (const uint32_t idx : path.insns)
            has_gap = has_gap || idx == pmu::kPathGap;
    ASSERT_TRUE(has_gap) << "filter produced no path gaps";
    expectIdenticalReplay(program, fx);
}

// ---------------------------------------------------------------------
// Detector prefilter: byte-identical reports, serial and parallel.
// ---------------------------------------------------------------------

TEST(Prefilter, ReportsIdenticalOnOracleBattery)
{
    const auto battery =
        oracle::standardBattery(testutil::testSeed(501), 3);
    for (const oracle::GeneratorConfig &cfg : battery) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc =
            core::proRaceConfig(40, 17, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);

        for (const unsigned jobs : {0u, 2u}) {
            core::OfflineOptions on = pc.offline;
            on.num_threads = jobs;
            on.static_prefilter = true;
            core::OfflineOptions off = on;
            off.static_prefilter = false;

            core::ParallelOfflineAnalyzer a_on(*gw.workload.program, on);
            core::OfflineResult r_on = a_on.analyze(run.trace);
            core::ParallelOfflineAnalyzer a_off(*gw.workload.program,
                                                off);
            core::OfflineResult r_off = a_off.analyze(run.trace);

            EXPECT_EQ(oracle::reportPairs(r_on.report),
                      oracle::reportPairs(r_off.report))
                << gw.workload.name << " jobs=" << jobs;
            EXPECT_TRUE(r_on.prefilter.enabled);
            EXPECT_GT(r_on.prefilter.pruned(), 0u) << gw.workload.name;
            EXPECT_LE(r_on.prefilter.pruned(),
                      r_on.prefilter.events_seen);
            EXPECT_FALSE(r_off.prefilter.enabled);
            EXPECT_EQ(r_off.prefilter.pruned(), 0u);
            // Pre-filter event counts must match: the pipelines only
            // diverge after reconstruction.
            EXPECT_EQ(r_on.extended_trace_events,
                      r_off.extended_trace_events);
        }
    }
}

// ---------------------------------------------------------------------
// Andersen solver: differential against a naive cubic reference that
// implements the documented memory model by brute-force chaotic
// iteration, plus fixpoint algebra (idempotence, monotonicity) and
// cycle-collapse equivalence.
// ---------------------------------------------------------------------

/**
 * A random synthetic constraint system, replayable into both solvers
 * with identical node-id assignment: node 0 is the hidden all-values
 * node (solver ctor), nodes 1..num_objects are the contents of every
 * object (instantiated upfront, in object order), and the remaining
 * extra_nodes are plain variables.
 */
struct SolverScript {
    enum Kind { kSeed, kCopy, kAdjust, kLoad, kStore };
    struct ScriptOp {
        Kind kind;
        uint32_t a; ///< kSeed: node; else: from / addr
        uint32_t b; ///< kSeed: object; else: to / dst / src
    };
    uint32_t num_objects = 0;
    std::vector<uint32_t> code_objs; ///< includes kObjTopCode
    uint32_t extra_nodes = 0;
    std::vector<ScriptOp> ops;

    uint32_t numNodes() const { return 1 + num_objects + extra_nodes; }
};

SolverScript
randomScript(Rng &rng)
{
    SolverScript s;
    s.num_objects = 4 + static_cast<uint32_t>(rng.below(6));
    s.code_objs.push_back(AndersenSolver::kObjTopCode);
    for (uint32_t obj = 2; obj < s.num_objects; ++obj) {
        if (rng.chance(0.25))
            s.code_objs.push_back(obj);
    }
    s.extra_nodes = 3 + static_cast<uint32_t>(rng.below(8));
    const uint32_t nodes = s.numNodes();
    const unsigned n_ops = 8 + static_cast<unsigned>(rng.below(25));
    for (unsigned i = 0; i < n_ops; ++i) {
        SolverScript::ScriptOp op;
        const uint64_t pick = rng.below(10);
        if (pick < 3) {
            op = {SolverScript::kSeed,
                  static_cast<uint32_t>(rng.below(nodes)),
                  static_cast<uint32_t>(rng.below(s.num_objects))};
        } else {
            op.kind = pick < 6   ? SolverScript::kCopy
                      : pick < 7 ? SolverScript::kAdjust
                      : pick < 8 ? SolverScript::kLoad
                                 : SolverScript::kStore;
            op.a = static_cast<uint32_t>(rng.below(nodes));
            op.b = static_cast<uint32_t>(rng.below(nodes));
        }
        s.ops.push_back(op);
    }
    return s;
}

/** Replay @p s into a real solver (constructed by the caller). */
void
applyScript(const SolverScript &s, AndersenSolver &solver)
{
    ObjSet code(s.num_objects);
    for (const uint32_t obj : s.code_objs)
        code.set(obj);
    solver.setCodeObjects(code);
    for (uint32_t obj = 0; obj < s.num_objects; ++obj)
        ASSERT_EQ(solver.contents(obj), obj + 1);
    for (uint32_t n = 0; n < s.extra_nodes; ++n)
        solver.addNode();
    for (const SolverScript::ScriptOp &op : s.ops) {
        switch (op.kind) {
          case SolverScript::kSeed: solver.seed(op.a, op.b); break;
          case SolverScript::kCopy: solver.copy(op.a, op.b); break;
          case SolverScript::kAdjust: solver.copyAdjust(op.a, op.b); break;
          case SolverScript::kLoad: solver.load(op.a, op.b); break;
          case SolverScript::kStore: solver.store(op.a, op.b); break;
        }
    }
    solver.solve();
}

/**
 * Naive cubic reference: re-applies every constraint until nothing
 * grows. Mirrors the documented built-in memory model — contents fold
 * into the all-values node, loads through ⊤/⊤code/code objects read
 * the all-values node, a store through ⊤/⊤code makes every store's
 * source escape into ⊤'s contents.
 */
struct ReferenceSolver {
    uint32_t num_objects;
    ObjSet code;
    std::vector<ObjSet> sets;
    bool top_store = false;

    explicit ReferenceSolver(const SolverScript &s)
        : num_objects(s.num_objects), code(s.num_objects)
    {
        for (const uint32_t obj : s.code_objs)
            code.set(obj);
        for (uint32_t n = 0; n < s.numNodes(); ++n)
            sets.emplace_back(num_objects);
        sets[0].set(AndersenSolver::kObjTop); // the all-values node
    }

    uint32_t contentsOf(uint32_t obj) const { return obj + 1; }
    bool
    opaque(uint32_t obj) const
    {
        return obj == AndersenSolver::kObjTop ||
            obj == AndersenSolver::kObjTopCode || code.test(obj);
    }

    void
    solve(const SolverScript &s)
    {
        for (const SolverScript::ScriptOp &op : s.ops) {
            if (op.kind == SolverScript::kSeed)
                sets[op.a].set(op.b);
        }
        bool changed = true;
        while (changed) {
            changed = false;
            // Contents of every object fold into all-values.
            for (uint32_t obj = 0; obj < num_objects; ++obj)
                changed |= sets[0].merge(sets[contentsOf(obj)]);
            for (const SolverScript::ScriptOp &op : s.ops) {
                switch (op.kind) {
                  case SolverScript::kSeed:
                    break;
                  case SolverScript::kCopy:
                    changed |= sets[op.b].merge(sets[op.a]);
                    break;
                  case SolverScript::kAdjust: {
                    ObjSet adj = sets[op.a];
                    if (adj.intersects(code))
                        adj.set(AndersenSolver::kObjTopCode);
                    changed |= sets[op.b].merge(adj);
                    break;
                  }
                  case SolverScript::kLoad:
                    for (const uint32_t obj : sets[op.a].toVector()) {
                        changed |= sets[op.b].merge(
                            opaque(obj) ? sets[0]
                                        : sets[contentsOf(obj)]);
                    }
                    break;
                  case SolverScript::kStore:
                    for (const uint32_t obj : sets[op.a].toVector()) {
                        if (obj == AndersenSolver::kObjTop ||
                            obj == AndersenSolver::kObjTopCode) {
                            if (!top_store) {
                                top_store = true;
                                changed = true;
                            }
                        } else {
                            changed |= sets[contentsOf(obj)].merge(
                                sets[op.b]);
                        }
                    }
                    break;
                }
            }
            if (top_store) {
                // Retroactive escape: every store's source is
                // reachable once any store may smear ⊤/⊤code.
                const uint32_t top =
                    contentsOf(AndersenSolver::kObjTop);
                for (const SolverScript::ScriptOp &op : s.ops) {
                    if (op.kind == SolverScript::kStore)
                        changed |= sets[top].merge(sets[op.b]);
                }
            }
        }
    }
};

std::string
objSetStr(const ObjSet &set)
{
    std::string out = "{";
    for (const uint32_t obj : set.toVector())
        out += std::to_string(obj) + ",";
    out += "}";
    return out;
}

TEST(AndersenSolverTest, RandomDifferentialVsNaiveReference)
{
    for (const uint64_t seed : testutil::testSeeds({101, 202})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        for (int trial = 0; trial < 20; ++trial) {
            const SolverScript s = randomScript(rng);
            AndersenSolver fast(s.num_objects, true);
            applyScript(s, fast);
            AndersenSolver plain(s.num_objects, false);
            applyScript(s, plain);
            ReferenceSolver ref(s);
            ref.solve(s);

            EXPECT_EQ(fast.topStoreSeen(), ref.top_store)
                << "trial " << trial;
            EXPECT_EQ(plain.topStoreSeen(), ref.top_store)
                << "trial " << trial;
            for (uint32_t n = 0; n < s.numNodes(); ++n) {
                EXPECT_EQ(objSetStr(fast.pointsTo(n)),
                          objSetStr(ref.sets[n]))
                    << "trial " << trial << " node " << n
                    << " (cycle collapse on)";
                EXPECT_EQ(objSetStr(plain.pointsTo(n)),
                          objSetStr(ref.sets[n]))
                    << "trial " << trial << " node " << n
                    << " (cycle collapse off)";
            }
        }
    }
}

TEST(AndersenSolverTest, SolveIsIdempotent)
{
    Rng rng(testutil::testSeed(303));
    for (int trial = 0; trial < 10; ++trial) {
        const SolverScript s = randomScript(rng);
        AndersenSolver solver(s.num_objects, true);
        applyScript(s, solver);
        std::vector<ObjSet> before;
        for (uint32_t n = 0; n < s.numNodes(); ++n)
            before.push_back(solver.pointsTo(n));
        const bool top_before = solver.topStoreSeen();
        solver.solve();
        EXPECT_EQ(solver.topStoreSeen(), top_before);
        for (uint32_t n = 0; n < s.numNodes(); ++n)
            EXPECT_EQ(solver.pointsTo(n), before[n]) << "node " << n;
    }
}

TEST(AndersenSolverTest, AddedConstraintsGrowSolutionsMonotonically)
{
    Rng rng(testutil::testSeed(404));
    for (int trial = 0; trial < 10; ++trial) {
        const SolverScript s = randomScript(rng);
        AndersenSolver solver(s.num_objects, true);
        applyScript(s, solver);
        std::vector<ObjSet> before;
        for (uint32_t n = 0; n < s.numNodes(); ++n)
            before.push_back(solver.pointsTo(n));

        // Re-open the system with a few extra constraints and re-solve:
        // inclusion constraints only ever grow solutions.
        const uint32_t nodes = s.numNodes();
        for (int extra = 0; extra < 4; ++extra) {
            const uint32_t a = static_cast<uint32_t>(rng.below(nodes));
            const uint32_t b = static_cast<uint32_t>(rng.below(nodes));
            if (rng.chance(0.5))
                solver.seed(a, static_cast<uint32_t>(
                                   rng.below(s.num_objects)));
            else
                solver.copy(a, b);
        }
        solver.solve();
        for (uint32_t n = 0; n < nodes; ++n) {
            ObjSet after = solver.pointsTo(n);
            EXPECT_FALSE(after.merge(before[n]))
                << "node " << n << " lost objects after re-solve";
        }
    }
}

TEST(AndersenSolverTest, CycleCollapsePreservesSolutionAndFires)
{
    // A copy ring with one seeded member: every node on the ring ends
    // up with the seed, the lazy collapse actually triggers, and the
    // collapsed solution equals the collapse-free one.
    AndersenSolver fast(4, true);
    AndersenSolver plain(4, false);
    for (AndersenSolver *s : {&fast, &plain}) {
        const uint32_t a = s->addNode();
        const uint32_t b = s->addNode();
        const uint32_t c = s->addNode();
        const uint32_t d = s->addNode();
        s->seed(a, 2);
        s->copy(a, b);
        s->copy(b, c);
        s->copy(c, a); // closes the ring
        s->copy(c, d);
        s->solve();
        for (const uint32_t n : {a, b, c, d})
            EXPECT_TRUE(s->pointsToObj(n, 2)) << "node " << n;
        EXPECT_FALSE(s->topStoreSeen());
    }
    EXPECT_GT(fast.cyclesCollapsed(), 0u);
    EXPECT_EQ(plain.cyclesCollapsed(), 0u);
    for (uint32_t n = 1; n <= 4; ++n)
        EXPECT_EQ(fast.pointsTo(n), plain.pointsTo(n)) << "node " << n;
}

// ---------------------------------------------------------------------
// Program-level points-to: the three consumers and their gating.
// ---------------------------------------------------------------------

TEST(PointsTo, PtrDispatchConsumersAllLive)
{
    // The heap-heavy dispatch workload exercises all three consumers:
    // a thread-local allocation site, resolvable indirect calls, and
    // immutable global tables.
    const auto w = workload::findWorkload("ptr-dispatch", 0.05);
    ASSERT_TRUE(w.has_value());
    const ProgramAnalysis pa(*w->program, true);
    const PointsTo *pt = pa.pointsTo();
    ASSERT_NE(pt, nullptr);
    const PointsToStats &st = pt->stats();

    EXPECT_TRUE(pt->noHeapForgery());
    EXPECT_FALSE(st.top_store);
    EXPECT_TRUE(pt->heapSound());
    EXPECT_GE(st.thread_local_allocs, 1u);
    EXPECT_GE(st.heap_local_sites, 1u);
    EXPECT_FALSE(pt->threadLocalAllocSites().empty());
    EXPECT_GE(st.immutable_globals, 1u);
    EXPECT_TRUE(pt->anyImmutable());
    EXPECT_GT(st.indirect_sites, 0u);
    EXPECT_EQ(st.resolved_indirect_sites, st.indirect_sites);
    EXPECT_LT(st.fanout_sharp, st.fanout_blunt);

    // The merged classification exposes heap-local sites, and the
    // sharp CFG's indirect fan-out matches the resolved target sets.
    uint32_t heap_local = 0;
    for (uint32_t i = 0; i < w->program->size(); ++i)
        heap_local += pa.siteClass(i) == SiteClass::kHeapLocal;
    EXPECT_EQ(heap_local, st.heap_local_sites);
    EXPECT_FALSE(pt->indirectTargets().empty());
}

TEST(PointsTo, UndereferencedHeapLiteralKeepsHeapSoundness)
{
    // A PRNG-seed-style constant that merely lands in the heap address
    // range must not void heap soundness: nothing dereferences it.
    ProgramBuilder b;
    b.beginFunction("main");
    b.movri(Reg::rax, static_cast<int64_t>(asmkit::kHeapBase + 0x100));
    b.movri(Reg::rcx, 64);
    b.mallocCall(Reg::rbx, Reg::rcx);
    b.storei(MemOperand::baseDisp(Reg::rbx, 0), 7);
    b.freeCall(Reg::rbx);
    b.halt();
    b.endFunction();
    const Program program = b.build();

    const ProgramAnalysis pa(program, true);
    const PointsTo *pt = pa.pointsTo();
    ASSERT_NE(pt, nullptr);
    EXPECT_TRUE(pt->noHeapForgery());
    EXPECT_TRUE(pt->heapSound());
    EXPECT_EQ(pt->stats().thread_local_allocs, 1u);
}

TEST(PointsTo, DereferencedHeapLiteralVoidsHeapSoundness)
{
    // The same constant stored through: now a forged heap pointer is
    // dereferenced, so every heap-locality conclusion must self-degrade
    // (the store could alias any allocation).
    ProgramBuilder b;
    b.beginFunction("main");
    b.movri(Reg::rax, static_cast<int64_t>(asmkit::kHeapBase + 0x100));
    b.movri(Reg::rcx, 64);
    b.mallocCall(Reg::rbx, Reg::rcx);
    b.storei(MemOperand::baseDisp(Reg::rax, 0), 7);
    b.halt();
    b.endFunction();
    const Program program = b.build();

    const ProgramAnalysis pa(program, true);
    const PointsTo *pt = pa.pointsTo();
    ASSERT_NE(pt, nullptr);
    EXPECT_FALSE(pt->noHeapForgery());
    EXPECT_FALSE(pt->heapSound());
    EXPECT_EQ(pt->stats().thread_local_allocs, 0u);
    EXPECT_TRUE(pt->threadLocalAllocSites().empty());
}

TEST(PointsTo, BoundaryPoolsAvoidPhantomTopStore)
{
    // A helper reached only through an indirect call stores through
    // rdi. Its entry block has no enumerable predecessors, so the old
    // blanket-⊤ wiring would have smeared the store and killed both
    // immutability and CFG sharpening; the per-register boundary pools
    // constrain rdi to what the call site actually passed.
    ProgramBuilder b;
    const uint64_t cell_addr = b.global("cell", 8);
    const uint64_t table_addr = b.globalU64("table", 123);
    // main comes first: an immediate of 0 reads as a scalar zero, so a
    // helper at instruction index 0 could not be typed as code.
    b.beginFunction("main");
    b.movLabel(Reg::r8, "helper");
    b.lea(Reg::rdi, b.symRef("cell"));
    b.movri(Reg::rsi, 5);
    b.callind(Reg::r8);
    b.halt();
    b.endFunction();
    b.beginFunction("helper");
    b.store(MemOperand::baseDisp(Reg::rdi, 0), Reg::rsi);
    b.ret();
    b.endFunction();
    const Program program = b.build();

    const ProgramAnalysis pa(program, true);
    const PointsTo *pt = pa.pointsTo();
    ASSERT_NE(pt, nullptr);
    EXPECT_FALSE(pt->stats().top_store);
    // The written global is mutable, the untouched one immutable.
    EXPECT_FALSE(pt->immutableCovers(cell_addr, 8));
    EXPECT_TRUE(pt->immutableCovers(table_addr, 8));
    EXPECT_EQ(pt->constantAt(table_addr, 8), 123u);
    // The indirect call resolves to exactly the taken helper.
    EXPECT_EQ(pt->stats().indirect_sites, 1u);
    EXPECT_EQ(pt->stats().resolved_indirect_sites, 1u);
    ASSERT_EQ(pt->indirectTargets().size(), 1u);
    const auto &[site, targets] = *pt->indirectTargets().begin();
    EXPECT_EQ(program.insnAt(site).op, isa::Op::kCallInd);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], program.labelAddr("helper"));
}

TEST(PointsTo, ReportsIdenticalOnOracleBattery)
{
    // The end-to-end guarantee: the racy-pair set is byte-identical
    // with the points-to layer on and off, under planted races.
    const auto battery =
        oracle::standardBattery(testutil::testSeed(521), 3);
    for (const oracle::GeneratorConfig &cfg : battery) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc =
            core::proRaceConfig(40, 19, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);

        for (const unsigned jobs : {0u, 2u}) {
            core::OfflineOptions on = pc.offline;
            on.num_threads = jobs;
            on.static_prefilter = true;
            on.pointsto = true;
            core::OfflineOptions off = on;
            off.pointsto = false;

            core::ParallelOfflineAnalyzer a_on(*gw.workload.program, on);
            core::OfflineResult r_on = a_on.analyze(run.trace);
            core::ParallelOfflineAnalyzer a_off(*gw.workload.program,
                                                off);
            core::OfflineResult r_off = a_off.analyze(run.trace);

            EXPECT_EQ(oracle::reportPairs(r_on.report),
                      oracle::reportPairs(r_off.report))
                << gw.workload.name << " jobs=" << jobs;
            // Points-to off must not recover constants.
            EXPECT_EQ(r_off.replay_stats.recovered_constant, 0u);
            // The heap layer only ever prunes more, never less.
            EXPECT_GE(r_on.prefilter.pruned(),
                      r_off.prefilter.pruned())
                << gw.workload.name;
        }
    }
}

TEST(Prefilter, DisabledForUnsoundPrograms)
{
    // A program that leaks a stack pointer: analysis demotes every
    // site, the prefilter reports itself off, and nothing is pruned.
    ProgramBuilder b;
    b.global("leak", 8);
    b.label("main");
    b.movrr(Reg::rbp, Reg::rsp);
    b.store(b.symRef("leak"), Reg::rbp);
    b.push(Reg::rax);
    b.pop(Reg::rbx);
    b.halt();
    const Program program = b.build();

    core::PipelineConfig pc =
        core::proRaceConfig(2, 5, pmu::PtFilter::all());
    core::RunArtifacts run = core::Session::run(
        program, [](vm::Machine &m) { m.addThread("main"); },
        pc.session);
    core::OfflineAnalyzer analyzer(program, pc.offline);
    core::OfflineResult result = analyzer.analyze(run.trace);
    EXPECT_FALSE(result.prefilter.enabled);
    EXPECT_FALSE(result.prefilter.analysis_sound);
    EXPECT_EQ(result.prefilter.pruned(), 0u);
}

} // namespace
} // namespace prorace::analysis

/**
 * @file
 * Tests for the static binary-analysis subsystem (src/analysis): CFG
 * recovery edge cases, dataflow fixpoints, escape-analysis soundness
 * gating, the detector prefilter's report-identity guarantee, and the
 * replayer's analysis-accelerated fast path producing bit-identical
 * reconstructions.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "analysis/analysis.hh"
#include "asmkit/layout.hh"
#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "replay/static_info.hh"
#include "testutil.hh"

namespace prorace::analysis {
namespace {

using asmkit::Program;
using asmkit::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;
using testutil::makeBranchyProgram;

// ---------------------------------------------------------------------
// Per-instruction facts: the table must agree with the replay layer's
// historical definitions (now forwarding wrappers) on every insn.
// ---------------------------------------------------------------------

TEST(InsnFacts, TableMatchesReplayStaticInfo)
{
    const Program program = makeBranchyProgram(10);
    const ProgramAnalysis pa(program);
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Insn &insn = program.insnAt(i);
        const InsnFacts &f = pa.facts(i);
        EXPECT_EQ(f.kill, replay::regWriteMask(insn)) << "insn " << i;
        EXPECT_EQ(f.mem_ops, replay::memOpCount(insn)) << "insn " << i;
        EXPECT_EQ(f.uses, regReadMask(insn)) << "insn " << i;
        // Invertible registers are written registers; learned registers
        // are, by definition, *not* written.
        EXPECT_EQ(f.invertible & ~f.kill, 0) << "insn " << i;
        EXPECT_EQ(f.learns & f.kill, 0) << "insn " << i;
    }
}

// ---------------------------------------------------------------------
// CFG edge cases
// ---------------------------------------------------------------------

TEST(Cfg, SingleBlockProgram)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax, 1);
    b.addri(Reg::rax, 2);
    b.halt();
    const Program program = b.build();

    const Cfg cfg(program);
    ASSERT_EQ(cfg.numBlocks(), 1u);
    EXPECT_TRUE(cfg.block(0).succs.empty());
    EXPECT_TRUE(cfg.block(0).reachable);
    EXPECT_TRUE(cfg.block(0).is_thread_entry);
    EXPECT_EQ(cfg.numEdges(), 0u);
    EXPECT_FALSE(cfg.hasIndirectTransfers());
}

TEST(Cfg, ProgramEndingWithoutRetOrHalt)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax, 1);
    b.cmpri(Reg::rax, 0);
    b.jcc(CondCode::kEq, "main");
    b.movri(Reg::rbx, 2); // program just ends here
    const Program program = b.build();

    const Cfg cfg(program);
    const uint32_t last = cfg.numBlocks() - 1;
    // The trailing block has no fall-through block to go to.
    EXPECT_TRUE(cfg.block(last).succs.empty());
    // Dataflow must treat the ragged end conservatively: everything
    // potentially live out, so nothing is wrongly proved dead.
    const ProgramAnalysis pa(program);
    EXPECT_EQ(pa.dataflow().block(last).live_out, 0xffff);
}

TEST(Cfg, UnreachableBlockIsFlagged)
{
    ProgramBuilder b;
    b.label("main");
    b.jmp("end");
    b.label("dead");
    b.movri(Reg::rax, 1);
    b.jmp("end");
    b.label("end");
    b.halt();
    const Program program = b.build();

    const Cfg cfg(program);
    const uint32_t dead = program.blockOf(1); // first insn of "dead"
    EXPECT_FALSE(cfg.block(dead).reachable);
    EXPECT_LT(cfg.numReachable(), cfg.numBlocks());
    // The dead block still has its edge into "end" recorded.
    ASSERT_EQ(cfg.block(dead).succs.size(), 1u);
}

TEST(Cfg, IndirectTransfersFanOutToAddressTaken)
{
    const Program program = makeBranchyProgram(10);
    const Cfg cfg(program);
    EXPECT_TRUE(cfg.hasIndirectTransfers());
    // The dispatch-table targets (movLabel immediates) are
    // address-taken, and everything address-taken is reachable because
    // a reachable indirect call exists.
    ASSERT_GE(cfg.addressTaken().size(), 2u);
    for (const uint32_t target : cfg.addressTaken()) {
        const uint32_t blk = program.blockOf(target);
        EXPECT_TRUE(cfg.block(blk).is_address_taken);
        EXPECT_TRUE(cfg.block(blk).unknown_entry);
        EXPECT_TRUE(cfg.block(blk).reachable) << "target " << target;
    }
    // The indirect-call block fans out to every address-taken block.
    bool found_callind = false;
    for (uint32_t i = 0; i < program.size(); ++i) {
        if (program.insnAt(i).op != isa::Op::kCallInd)
            continue;
        found_callind = true;
        const CfgBlock &blk = cfg.block(program.blockOf(i));
        for (const uint32_t target : cfg.addressTaken()) {
            const uint32_t tb = program.blockOf(target);
            EXPECT_NE(std::find(blk.succs.begin(), blk.succs.end(), tb),
                      blk.succs.end())
                << "missing edge to address-taken block " << tb;
        }
    }
    EXPECT_TRUE(found_callind);
}

TEST(Cfg, SpawnTargetsAreThreadEntries)
{
    const Program program = makeBranchyProgram(10);
    const Cfg cfg(program);
    bool found_spawn = false;
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Insn &insn = program.insnAt(i);
        if (insn.op != isa::Op::kSpawn)
            continue;
        found_spawn = true;
        const uint32_t tb = program.blockOf(insn.target);
        EXPECT_TRUE(cfg.block(tb).is_thread_entry);
        EXPECT_TRUE(cfg.block(tb).unknown_entry);
        EXPECT_TRUE(cfg.block(tb).reachable);
        // No intra-thread edge into the spawned entry from the spawn.
        const CfgBlock &sb = cfg.block(program.blockOf(i));
        EXPECT_EQ(std::find(sb.succs.begin(), sb.succs.end(), tb),
                  sb.succs.end());
    }
    EXPECT_TRUE(found_spawn);
}

TEST(Cfg, EdgesAreSymmetric)
{
    const Program program = makeBranchyProgram(10);
    const Cfg cfg(program);
    for (uint32_t b = 0; b < cfg.numBlocks(); ++b) {
        for (const uint32_t s : cfg.block(b).succs) {
            const auto &preds = cfg.block(s).preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(), b),
                      preds.end())
                << "edge " << b << "->" << s << " missing back-link";
        }
    }
}

// ---------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------

TEST(Dataflow, BlockKillIsUnionOfInsnKills)
{
    const Program program = makeBranchyProgram(10);
    const ProgramAnalysis pa(program);
    for (uint32_t b = 0; b < pa.cfg().numBlocks(); ++b) {
        uint16_t expect = 0;
        uint32_t mem = 0;
        for (uint32_t i = program.blockBegin(b); i < program.blockEnd(b);
             ++i) {
            expect |= pa.facts(i).kill;
            mem += pa.facts(i).mem_ops;
        }
        EXPECT_EQ(pa.blockKill(b), expect) << "block " << b;
        EXPECT_EQ(pa.dataflow().block(b).mem_ops, mem) << "block " << b;
    }
}

TEST(Dataflow, LivenessOnDiamond)
{
    ProgramBuilder b;
    b.global("out", 8);
    b.label("main");
    b.movri(Reg::rax, 1);
    b.cmpri(Reg::rax, 0);
    b.jcc(CondCode::kEq, "right");
    b.movrr(Reg::rbx, Reg::rax); // left: reads rax
    b.jmp("join");
    b.label("right");
    b.movri(Reg::rbx, 5); // right: rax dead here
    b.label("join");
    b.store(b.symRef("out"), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);

    const uint16_t rax = regBit(Reg::rax);
    const uint16_t rbx = regBit(Reg::rbx);
    // rax is live into the left arm (movrr reads it), not the right.
    bool saw_left = false, saw_right = false, saw_join = false;
    for (uint32_t blk = 0; blk < pa.cfg().numBlocks(); ++blk) {
        const isa::Insn &first = program.insnAt(program.blockBegin(blk));
        const BlockDataflow &df = pa.dataflow().block(blk);
        if (first.op == isa::Op::kMovRR) {
            saw_left = true;
            EXPECT_TRUE(df.live_in & rax);
        } else if (first.op == isa::Op::kMovRI &&
                   first.dst == Reg::rbx) {
            saw_right = true;
            EXPECT_FALSE(df.live_in & rax);
        } else if (first.op == isa::Op::kStore) {
            saw_join = true;
            EXPECT_TRUE(df.live_in & rbx);
        }
    }
    EXPECT_TRUE(saw_left && saw_right && saw_join);
}

TEST(Dataflow, ReachingDefsUniqueAmbiguousExternal)
{
    ProgramBuilder b;
    b.global("out", 8);
    b.label("main");
    const uint32_t def_a = b.movri(Reg::rax, 1); // unique def of rax
    b.movri(Reg::rcx, 0);
    b.cmpri(Reg::rcx, 0);
    b.jcc(CondCode::kEq, "right");
    b.movri(Reg::rbx, 2); // def 1 of rbx
    b.jmp("join");
    b.label("right");
    b.movri(Reg::rbx, 3); // def 2 of rbx
    b.label("join");
    b.store(b.symRef("out"), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);

    // At the join block: rax has the unique entry def, rbx is
    // ambiguous (two arms), and at the entry block everything is
    // external (thread entry).
    const unsigned ax = isa::gprIndex(Reg::rax);
    const unsigned bx = isa::gprIndex(Reg::rbx);
    const uint32_t entry = program.blockOf(0);
    EXPECT_EQ(pa.dataflow().block(entry).reach_in[ax].kind,
              ReachingDef::kExternal);
    bool saw_join = false;
    for (uint32_t blk = 0; blk < pa.cfg().numBlocks(); ++blk) {
        if (program.insnAt(program.blockBegin(blk)).op != isa::Op::kStore)
            continue;
        saw_join = true;
        const BlockDataflow &df = pa.dataflow().block(blk);
        EXPECT_EQ(df.reach_in[ax].kind, ReachingDef::kUnique);
        EXPECT_EQ(df.reach_in[ax].insn, def_a);
        EXPECT_EQ(df.reach_in[bx].kind, ReachingDef::kAmbiguous);
    }
    EXPECT_TRUE(saw_join);
}

// ---------------------------------------------------------------------
// Escape analysis
// ---------------------------------------------------------------------

TEST(Escape, BranchyProgramIsSoundWithThreadLocalSites)
{
    const Program program = makeBranchyProgram(10);
    const ProgramAnalysis pa(program);
    const EscapeAnalysis &ea = pa.escape();
    EXPECT_TRUE(ea.sound());
    EXPECT_GT(ea.numThreadLocal(), 0u);
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Op op = program.insnAt(i).op;
        if (op == isa::Op::kPush || op == isa::Op::kPop ||
            op == isa::Op::kCall || op == isa::Op::kCallInd ||
            op == isa::Op::kRet) {
            EXPECT_EQ(ea.site(i), SiteClass::kStackImplicit)
                << "insn " << i;
        }
        // The global accumulator store must stay may-shared.
        if (op == isa::Op::kStore) {
            EXPECT_EQ(ea.site(i), SiteClass::kMayShared) << "insn " << i;
        }
    }
}

TEST(Escape, FramePointerSpillsAreStackDirect)
{
    ProgramBuilder b;
    b.label("main");
    b.movrr(Reg::rbp, Reg::rsp);
    b.movri(Reg::rax, 7);
    b.store(MemOperand::baseDisp(Reg::rbp, -8), Reg::rax);
    b.load(Reg::rbx, MemOperand::baseDisp(Reg::rbp, -8));
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    ASSERT_TRUE(pa.escape().sound());
    for (uint32_t i = 0; i < program.size(); ++i) {
        const isa::Op op = program.insnAt(i).op;
        if (op == isa::Op::kStore || op == isa::Op::kLoad) {
            EXPECT_EQ(pa.escape().site(i), SiteClass::kStackDirect)
                << "insn " << i;
        }
    }
    EXPECT_EQ(pa.escape().numThreadLocal(), 2u);
}

TEST(Escape, StoredStackPointerKillsEverything)
{
    ProgramBuilder b;
    b.global("leak", 8);
    b.label("main");
    b.movrr(Reg::rbp, Reg::rsp);
    b.store(MemOperand::baseDisp(Reg::rbp, -8), Reg::rax); // local spill
    b.store(b.symRef("leak"), Reg::rbp); // stack pointer escapes!
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    EXPECT_TRUE(pa.escape().rspIntegrity());
    EXPECT_FALSE(pa.escape().noStackEscape());
    EXPECT_FALSE(pa.escape().sound());
    // Demotion: nothing is thread-local anymore, the spill included.
    EXPECT_EQ(pa.escape().numThreadLocal(), 0u);
    for (uint32_t i = 0; i < program.size(); ++i)
        EXPECT_FALSE(pa.siteThreadLocal(i));
}

TEST(Escape, ArbitraryRspWriteBreaksIntegrity)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rsp, 0x1000);
    b.push(Reg::rax);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    EXPECT_FALSE(pa.escape().rspIntegrity());
    EXPECT_FALSE(pa.escape().sound());
    EXPECT_EQ(pa.escape().numThreadLocal(), 0u);
}

TEST(Escape, ForgedStackImmediateBreaksNoEscape)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax,
            static_cast<int64_t>(asmkit::stackTopFor(1) - 64));
    b.store(MemOperand::baseDisp(Reg::rax, 0), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    EXPECT_FALSE(pa.escape().noStackEscape());
    EXPECT_EQ(pa.escape().numThreadLocal(), 0u);
}

TEST(Escape, LargeDisplacementIsNotThreadLocal)
{
    ProgramBuilder b;
    b.label("main");
    b.store(MemOperand::baseDisp(Reg::rsp, -(kMaxStackDisp + 8)),
            Reg::rax);
    b.store(MemOperand::baseDisp(Reg::rsp, -16), Reg::rbx);
    b.halt();
    const Program program = b.build();
    const ProgramAnalysis pa(program);
    ASSERT_TRUE(pa.escape().sound());
    EXPECT_EQ(pa.escape().site(0), SiteClass::kMayShared);
    EXPECT_EQ(pa.escape().site(1), SiteClass::kStackDirect);
}

// ---------------------------------------------------------------------
// Replayer fast path: analysis-accelerated replay is bit-identical.
// ---------------------------------------------------------------------

/** Traced-run fixture (mirrors the one in test_replay.cc). */
struct Fixture {
    trace::RunTrace trace;
    std::map<uint32_t, pmu::ThreadPath> paths;
    std::map<uint32_t, replay::ThreadAlignment> alignments;

    Fixture(const Program &program, uint64_t period,
            const pmu::PtFilter &filter, uint64_t seed = 3)
    {
        vm::MachineConfig mcfg;
        mcfg.seed = seed;
        driver::TraceConfig tcfg;
        tcfg.pebs_period = period;
        tcfg.seed = seed + 100;
        tcfg.pt.filter = filter;

        vm::Machine machine(program, mcfg);
        driver::TracingSession tracing(tcfg, mcfg.num_cores);
        machine.setObserver(&tracing);
        machine.addThread("main");
        machine.run();
        trace = tracing.finish();
        for (uint32_t tid = 0; tid < machine.numThreads(); ++tid)
            trace.meta.threads.push_back(
                {tid, machine.thread(tid).entry_ip});
        paths = pmu::decodePt(program, filter, trace);
        alignments = replay::alignTrace(program, paths, trace);
    }
};

using AccessKey = std::tuple<uint32_t, uint64_t, uint32_t, uint64_t,
                             uint8_t, bool, bool, uint64_t, uint8_t>;

AccessKey
keyOf(const replay::ReconstructedAccess &a)
{
    return {a.tid,      a.position, a.insn_index,
            a.addr,     a.width,    a.is_write,
            a.is_atomic, a.tsc,
            static_cast<uint8_t>(a.origin)};
}

void
expectIdenticalReplay(const Program &program, const Fixture &fx)
{
    const ProgramAnalysis pa(program);
    replay::ReplayConfig base;
    replay::Replayer plain(program, base);
    const auto without =
        plain.replayAll(fx.paths, fx.alignments, fx.trace);

    replay::ReplayConfig accel;
    accel.analysis = &pa;
    replay::Replayer fast(program, accel);
    const auto with = fast.replayAll(fx.paths, fx.alignments, fx.trace);

    ASSERT_EQ(without.size(), with.size());
    for (size_t i = 0; i < without.size(); ++i)
        EXPECT_EQ(keyOf(without[i]), keyOf(with[i])) << "access " << i;
    EXPECT_EQ(plain.stats().totalAccesses(), fast.stats().totalAccesses());
    EXPECT_EQ(plain.stats().recovered_backward,
              fast.stats().recovered_backward);
    EXPECT_EQ(plain.stats().backward_rounds, fast.stats().backward_rounds);
}

TEST(ReplayFastPath, FullTraceIsBitIdentical)
{
    const Program program = makeBranchyProgram(80);
    for (const uint64_t seed : testutil::testSeeds({3, 11})) {
        PRORACE_SEED_TRACE(seed);
        const Fixture fx(program, 7, pmu::PtFilter::all(), seed);
        expectIdenticalReplay(program, fx);
    }
}

TEST(ReplayFastPath, PathGapWindowsAreBitIdentical)
{
    // Exclude the helper/dispatch functions from the PT filter so the
    // decoded paths contain kPathGap runs; the block-skip fast path
    // must handle gap-bearing windows identically.
    const Program program = makeBranchyProgram(60);
    pmu::PtFilter filter; // empty: admits nothing until ranges are added
    for (const asmkit::Function &fn : program.functions()) {
        if (fn.name == "main" || fn.name == "worker")
            filter.addRange(fn.begin, fn.end);
    }
    const Fixture fx(program, 5, filter, 9);
    bool has_gap = false;
    for (const auto &[tid, path] : fx.paths)
        for (const uint32_t idx : path.insns)
            has_gap = has_gap || idx == pmu::kPathGap;
    ASSERT_TRUE(has_gap) << "filter produced no path gaps";
    expectIdenticalReplay(program, fx);
}

// ---------------------------------------------------------------------
// Detector prefilter: byte-identical reports, serial and parallel.
// ---------------------------------------------------------------------

TEST(Prefilter, ReportsIdenticalOnOracleBattery)
{
    const auto battery =
        oracle::standardBattery(testutil::testSeed(501), 3);
    for (const oracle::GeneratorConfig &cfg : battery) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc =
            core::proRaceConfig(40, 17, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);

        for (const unsigned jobs : {0u, 2u}) {
            core::OfflineOptions on = pc.offline;
            on.num_threads = jobs;
            on.static_prefilter = true;
            core::OfflineOptions off = on;
            off.static_prefilter = false;

            core::ParallelOfflineAnalyzer a_on(*gw.workload.program, on);
            core::OfflineResult r_on = a_on.analyze(run.trace);
            core::ParallelOfflineAnalyzer a_off(*gw.workload.program,
                                                off);
            core::OfflineResult r_off = a_off.analyze(run.trace);

            EXPECT_EQ(oracle::reportPairs(r_on.report),
                      oracle::reportPairs(r_off.report))
                << gw.workload.name << " jobs=" << jobs;
            EXPECT_TRUE(r_on.prefilter.enabled);
            EXPECT_GT(r_on.prefilter.pruned(), 0u) << gw.workload.name;
            EXPECT_LE(r_on.prefilter.pruned(),
                      r_on.prefilter.events_seen);
            EXPECT_FALSE(r_off.prefilter.enabled);
            EXPECT_EQ(r_off.prefilter.pruned(), 0u);
            // Pre-filter event counts must match: the pipelines only
            // diverge after reconstruction.
            EXPECT_EQ(r_on.extended_trace_events,
                      r_off.extended_trace_events);
        }
    }
}

TEST(Prefilter, DisabledForUnsoundPrograms)
{
    // A program that leaks a stack pointer: analysis demotes every
    // site, the prefilter reports itself off, and nothing is pruned.
    ProgramBuilder b;
    b.global("leak", 8);
    b.label("main");
    b.movrr(Reg::rbp, Reg::rsp);
    b.store(b.symRef("leak"), Reg::rbp);
    b.push(Reg::rax);
    b.pop(Reg::rbx);
    b.halt();
    const Program program = b.build();

    core::PipelineConfig pc =
        core::proRaceConfig(2, 5, pmu::PtFilter::all());
    core::RunArtifacts run = core::Session::run(
        program, [](vm::Machine &m) { m.addThread("main"); },
        pc.session);
    core::OfflineAnalyzer analyzer(program, pc.offline);
    core::OfflineResult result = analyzer.analyze(run.trace);
    EXPECT_FALSE(result.prefilter.enabled);
    EXPECT_FALSE(result.prefilter.analysis_sound);
    EXPECT_EQ(result.prefilter.pruned(), 0u);
}

} // namespace
} // namespace prorace::analysis

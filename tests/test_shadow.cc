/**
 * @file
 * Shadow-structure tests for the PR-2 overhaul: the paged ProgramMap
 * against the byte-map reference model, the flat-table FastTrack
 * against the pre-overhaul reference detector, the SSO VectorClock,
 * the FlatMap primitive, and the new guard rails (tid limit, width
 * asserts).
 */

#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "detect/fasttrack.hh"
#include "detect/fasttrack_ref.hh"
#include "detect/vector_clock.hh"
#include "replay/byte_map_model.hh"
#include "replay/program_map.hh"
#include "support/flat_map.hh"
#include "support/rng.hh"

#include "testutil.hh"

namespace {

using namespace prorace;
using detect::Epoch;
using detect::FastTrack;
using detect::MemAccess;
using detect::RefFastTrack;
using detect::VectorClock;
using replay::ByteMapModel;
using replay::ProgramMap;

// --- FlatMap ---

TEST(FlatMap, InsertFindEraseAcrossRehashes)
{
    FlatMap<uint64_t> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);

    constexpr uint64_t kKeys = 10000;
    for (uint64_t k = 0; k < kKeys; ++k)
        map[k * 0x10001ull] = k;
    EXPECT_EQ(map.size(), kKeys);
    for (uint64_t k = 0; k < kKeys; ++k) {
        const uint64_t *v = map.find(k * 0x10001ull);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, k);
    }

    // Erase the odd keys; the even ones must survive the tombstones.
    for (uint64_t k = 1; k < kKeys; k += 2)
        EXPECT_TRUE(map.erase(k * 0x10001ull));
    EXPECT_FALSE(map.erase(1 * 0x10001ull));
    EXPECT_EQ(map.size(), kKeys / 2);
    for (uint64_t k = 0; k < kKeys; ++k) {
        const uint64_t *v = map.find(k * 0x10001ull);
        if (k % 2 == 0) {
            ASSERT_NE(v, nullptr);
            EXPECT_EQ(*v, k);
        } else {
            EXPECT_EQ(v, nullptr);
        }
    }

    // Reinsertion reuses tombstoned slots.
    for (uint64_t k = 1; k < kKeys; k += 2)
        map[k * 0x10001ull] = k + 1;
    EXPECT_EQ(map.size(), kKeys);
    EXPECT_EQ(*map.find(3 * 0x10001ull), 4u);

    size_t visited = 0;
    map.forEach([&](uint64_t, const uint64_t &) { ++visited; });
    EXPECT_EQ(visited, kKeys);
    EXPECT_GT(map.probeStats().lookups, 0u);
}

TEST(FlatMap, RandomizedAgainstStdMap)
{
    FlatMap<uint64_t> flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    const uint64_t seed = testutil::testSeed(77);
    PRORACE_SEED_TRACE(seed);
    Rng rng(seed);
    for (int op = 0; op < 50000; ++op) {
        const uint64_t key = rng.below(512) * 0x9e370001ull;
        switch (rng.below(3)) {
          case 0:
            flat[key] = static_cast<uint64_t>(op);
            ref[key] = static_cast<uint64_t>(op);
            break;
          case 1:
            EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
            break;
          default: {
            const uint64_t *v = flat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(v != nullptr, it != ref.end());
            if (v) {
                EXPECT_EQ(*v, it->second);
            }
          }
        }
    }
    EXPECT_EQ(flat.size(), ref.size());
}

// --- VectorClock SSO ---

TEST(VectorClockSso, StaysInlineForFourComponents)
{
    VectorClock vc;
    EXPECT_FALSE(vc.usesHeap());
    for (uint32_t t = 0; t < VectorClock::kInlineComponents; ++t)
        vc.set(t, 10 + t);
    EXPECT_FALSE(vc.usesHeap());
    EXPECT_EQ(vc.get(3), 13u);
    EXPECT_EQ(vc.get(9), 0u);
}

TEST(VectorClockSso, SpillPreservesComponents)
{
    VectorClock vc;
    for (uint32_t t = 0; t < 12; ++t)
        vc.set(t, 100 + t);
    EXPECT_TRUE(vc.usesHeap());
    for (uint32_t t = 0; t < 12; ++t)
        EXPECT_EQ(vc.get(t), 100u + t);
    EXPECT_EQ(vc.size(), 12u);
}

TEST(VectorClockSso, JoinAssignLessOrEqualAcrossSpillBoundary)
{
    VectorClock small;
    small.set(1, 7);

    VectorClock big;
    big.set(9, 3);
    big.set(1, 2);

    // inline.join(heap) spills and takes pointwise maxima.
    VectorClock joined = small;
    joined.join(big);
    EXPECT_EQ(joined.get(1), 7u);
    EXPECT_EQ(joined.get(9), 3u);
    EXPECT_TRUE(joined.usesHeap());

    EXPECT_TRUE(small.lessOrEqual(joined));
    EXPECT_TRUE(big.lessOrEqual(joined));
    EXPECT_FALSE(joined.lessOrEqual(small));

    // assign shrinks back to the source's logical size.
    joined.assign(small);
    EXPECT_EQ(joined.get(1), 7u);
    EXPECT_EQ(joined.get(9), 0u);
    EXPECT_EQ(joined.size(), small.size());
    EXPECT_TRUE(joined.lessOrEqual(small));

    // copy / move keep values on both storage kinds.
    VectorClock copy(big);
    EXPECT_EQ(copy.get(9), 3u);
    VectorClock moved(std::move(copy));
    EXPECT_EQ(moved.get(9), 3u);
    EXPECT_EQ(copy.get(9), 0u); // moved-from is reset
    VectorClock assigned;
    assigned = moved;
    EXPECT_EQ(assigned.get(9), 3u);
}

TEST(VectorClockSso, ToStringMatchesOldFormat)
{
    VectorClock vc;
    vc.set(0, 3);
    vc.set(1, 7);
    EXPECT_EQ(vc.toString(), "[t0:3 t1:7]");
}

// --- paged ProgramMap vs byte-map model ---

TEST(PagedProgramMap, PageBoundaryStraddles)
{
    ProgramMap pm;
    // 8-byte store straddling the 4 KiB page boundary at 0x2000.
    pm.writeMem(0x1ffc, 0x1122334455667788ull, 8);
    EXPECT_EQ(pm.readMem(0x1ffc, 8).value(), 0x1122334455667788ull);
    EXPECT_EQ(pm.readMem(0x2000, 4).value(), 0x11223344ull);

    // Invalidate one byte past the boundary: the straddling read dies,
    // the low half survives.
    pm.invalidateMem(0x2000, 1);
    EXPECT_FALSE(pm.readMem(0x1ffc, 8).has_value());
    EXPECT_TRUE(pm.readMem(0x1ffc, 4).has_value());

    // Blacklist across the boundary: writes there never land again.
    pm.blacklistMem(0x1ffe, 4);
    pm.writeMem(0x1ffc, 0xffffffffffffffffull, 8);
    EXPECT_FALSE(pm.readMem(0x1ffc, 4).has_value());
    EXPECT_TRUE(pm.readMem(0x2002, 2).has_value());
}

TEST(PagedProgramMap, EpochInvalidationDropsAvailabilityOnly)
{
    ProgramMap pm;
    pm.writeMem(0x5000, 0xabcdull, 2);
    ASSERT_TRUE(pm.readMem(0x5000, 2).has_value());
    const auto consumed_before = pm.consumedAddresses();
    EXPECT_EQ(consumed_before.size(), 2u);

    pm.invalidateMemory();
    EXPECT_FALSE(pm.readMem(0x5000, 2).has_value());
    // Consumed marks survive the epoch bump (they feed regeneration).
    EXPECT_EQ(pm.consumedAddresses(), consumed_before);

    // The page is reusable after the bump.
    pm.writeMem(0x5000, 0x99ull, 1);
    EXPECT_EQ(pm.readMem(0x5000, 1).value(), 0x99ull);
    EXPECT_EQ(pm.memStats().mem_invalidations, 1u);
    EXPECT_GE(pm.memStats().pages_allocated, 1u);
}

TEST(PagedProgramMap, RandomizedDifferentialAgainstByteMap)
{
    ProgramMap paged;
    ByteMapModel ref;
    const uint64_t seed = testutil::testSeed(20260806);
    PRORACE_SEED_TRACE(seed);
    Rng rng(seed);

    // Address pool clustered around page boundaries and spread across
    // distant pages, so straddles, sparse pages, and table growth all
    // happen.
    std::vector<uint64_t> bases;
    for (uint64_t page = 0; page < 24; ++page) {
        const uint64_t base = 0x10000 + page * 0x1000;
        bases.push_back(base);
        bases.push_back(base + 0xff8); // near the page end
        bases.push_back(base + 0xffc); // 4/8-byte straddle
    }
    bases.push_back(0xdeadbeef0000ull); // far page (table stress)

    const uint8_t widths[] = {1, 2, 4, 8};
    for (int op = 0; op < 60000; ++op) {
        const uint64_t addr = bases[rng.below(bases.size())] +
            rng.below(16);
        const uint8_t width =
            widths[rng.below(sizeof(widths) / sizeof(widths[0]))];
        switch (rng.below(16)) {
          case 0:
            paged.invalidateMemory();
            ref.invalidateMemory();
            break;
          case 1:
            paged.invalidateMem(addr, width);
            ref.invalidateMem(addr, width);
            break;
          case 2: {
            const uint64_t size = rng.range(1, 24);
            paged.blacklistMem(addr, size);
            ref.blacklistMem(addr, size);
            break;
          }
          case 3:
          case 4:
          case 5:
          case 6: {
            const auto a = paged.readMem(addr, width);
            const auto b = ref.readMem(addr, width);
            ASSERT_EQ(a.has_value(), b.has_value())
                << "read mismatch at 0x" << std::hex << addr
                << " width " << std::dec << unsigned(width)
                << " op " << op;
            if (a) {
                ASSERT_EQ(*a, *b);
            }
            break;
          }
          default: {
            const uint64_t value = rng.next();
            paged.writeMem(addr, value, width);
            ref.writeMem(addr, value, width);
          }
        }
    }

    EXPECT_EQ(paged.consumedAddresses(), ref.consumedAddresses());
}

TEST(PagedProgramMap, WidthAndOverflowAsserts)
{
    ProgramMap pm;
    EXPECT_THROW(pm.writeMem(0x1000, 0, 3), std::logic_error);
    EXPECT_THROW(pm.writeMem(0x1000, 0, 0), std::logic_error);
    EXPECT_THROW(pm.writeMem(0x1000, 0, 16), std::logic_error);
    EXPECT_THROW(pm.readMem(0x1000, 5), std::logic_error);
    EXPECT_THROW(pm.invalidateMem(0x1000, 7), std::logic_error);
    // addr + width must not wrap the address space.
    EXPECT_THROW(pm.readMem(~uint64_t{0} - 3, 8), std::logic_error);
    EXPECT_THROW(pm.writeMem(~uint64_t{0}, 0, 1), std::logic_error);
    // The top of the address space minus a full span is fine.
    EXPECT_NO_THROW(pm.writeMem(~uint64_t{0} - 8, 0x42, 8));
    EXPECT_EQ(pm.readMem(~uint64_t{0} - 8, 8).value(), 0x42ull);
}

// --- FastTrack vs the reference detector ---

/** One recorded detector event, replayable into either detector. */
struct DetectorEvent {
    enum Kind : uint8_t {
        kAccess, kAcquire, kRelease, kBarrierEnter, kBarrierExit,
        kFork, kJoinEv, kExit, kAlloc, kFree,
    };
    Kind kind = kAccess;
    MemAccess ma;
    uint32_t tid = 0;
    uint64_t object = 0;
    uint64_t aux = 0;
};

template <typename Detector>
void
replayEvents(Detector &ft, const std::vector<DetectorEvent> &events)
{
    for (const DetectorEvent &ev : events) {
        switch (ev.kind) {
          case DetectorEvent::kAccess:       ft.access(ev.ma); break;
          case DetectorEvent::kAcquire:      ft.acquire(ev.tid, ev.object); break;
          case DetectorEvent::kRelease:      ft.release(ev.tid, ev.object); break;
          case DetectorEvent::kBarrierEnter: ft.barrierEnter(ev.tid, ev.object); break;
          case DetectorEvent::kBarrierExit:  ft.barrierExit(ev.tid, ev.object); break;
          case DetectorEvent::kFork:         ft.fork(ev.tid, static_cast<uint32_t>(ev.aux)); break;
          case DetectorEvent::kJoinEv:       ft.join(ev.tid, static_cast<uint32_t>(ev.aux)); break;
          case DetectorEvent::kExit:         ft.threadExit(ev.tid); break;
          case DetectorEvent::kAlloc:        ft.allocate(ev.tid, ev.object, ev.aux); break;
          case DetectorEvent::kFree:         ft.deallocate(ev.tid, ev.object); break;
        }
    }
}

/** Full-report equality: same races, same order, same fields. */
void
expectIdenticalReports(const FastTrack &ft, const RefFastTrack &ref)
{
    const auto &a = ft.report().races();
    const auto &b = ref.report().races();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr) << "race " << i;
        EXPECT_EQ(a[i].prior.tid, b[i].prior.tid) << "race " << i;
        EXPECT_EQ(a[i].prior.insn_index, b[i].prior.insn_index);
        EXPECT_EQ(a[i].prior.is_write, b[i].prior.is_write);
        EXPECT_EQ(a[i].prior.tsc, b[i].prior.tsc);
        EXPECT_EQ(a[i].current.tid, b[i].current.tid) << "race " << i;
        EXPECT_EQ(a[i].current.insn_index, b[i].current.insn_index);
        EXPECT_EQ(a[i].current.is_write, b[i].current.is_write);
        EXPECT_EQ(a[i].current.tsc, b[i].current.tsc);
    }
    EXPECT_EQ(ft.report().format(), ref.report().format());

    const auto fs = ft.stats();
    const auto &rs = ref.stats();
    EXPECT_EQ(fs.reads, rs.reads);
    EXPECT_EQ(fs.writes, rs.writes);
    EXPECT_EQ(fs.sync_ops, rs.sync_ops);
    EXPECT_EQ(fs.epoch_fast_path, rs.epoch_fast_path);
    EXPECT_EQ(fs.read_shares, rs.read_shares);
}

TEST(FastTrackDifferential, RandomizedEventStreams)
{
    for (uint64_t seed :
         testutil::testSeeds({1ull, 7ull, 123ull, 20260806ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        std::vector<DetectorEvent> events;
        constexpr uint32_t kThreads = 6;
        uint64_t tsc = 0;
        for (int i = 0; i < 40000; ++i) {
            DetectorEvent ev;
            const uint32_t tid = static_cast<uint32_t>(
                rng.below(kThreads));
            ++tsc;
            if (rng.chance(0.08)) {
                // Sync traffic over a few objects.
                const uint64_t obj = 0x9000 + 0x40 * rng.below(4);
                static const DetectorEvent::Kind kSyncKinds[] = {
                    DetectorEvent::kAcquire, DetectorEvent::kRelease,
                    DetectorEvent::kBarrierEnter,
                    DetectorEvent::kBarrierExit,
                };
                ev.kind = kSyncKinds[rng.below(4)];
                ev.tid = tid;
                ev.object = obj;
            } else if (rng.chance(0.02)) {
                // malloc/free lifetime churn over a fixed block, the
                // allocate/deallocate range-erase path.
                ev.kind = rng.chance(0.5) ? DetectorEvent::kAlloc
                                          : DetectorEvent::kFree;
                ev.tid = tid;
                ev.object = 0x20000 + 0x100 * rng.below(4);
                ev.aux = 64 + 8 * rng.below(8);
            } else {
                ev.kind = DetectorEvent::kAccess;
                ev.ma.tid = tid;
                // Clustered addresses maximize granule contention, with
                // occasional granule-straddling widths.
                ev.ma.addr = 0x10000 + 8 * rng.below(256) + rng.below(4);
                ev.ma.width = rng.chance(0.1) ? 8 : 4;
                ev.ma.is_write = rng.chance(0.35);
                ev.ma.is_atomic = rng.chance(0.1);
                ev.ma.insn_index = static_cast<uint32_t>(rng.below(400));
                ev.ma.tsc = tsc;
            }
            events.push_back(ev);
        }

        FastTrack ft;
        RefFastTrack ref;
        replayEvents(ft, events);
        replayEvents(ref, events);
        expectIdenticalReports(ft, ref);
    }
}

TEST(FastTrackDifferential, OrderingSensitiveScenarios)
{
    // Hand-built streams whose reports depend on state-machine order:
    // read-share inflation then collapse, fork/join edges, lifetime
    // recycling at one address. A structure swap that perturbed any
    // ordering-sensitive path would diverge here.
    std::vector<DetectorEvent> events;
    auto access = [&](uint32_t tid, uint64_t addr, bool write,
                      uint32_t insn, uint64_t tsc) {
        DetectorEvent ev;
        ev.kind = DetectorEvent::kAccess;
        ev.ma.tid = tid;
        ev.ma.addr = addr;
        ev.ma.is_write = write;
        ev.ma.insn_index = insn;
        ev.ma.tsc = tsc;
        events.push_back(ev);
    };
    auto sync = [&](DetectorEvent::Kind kind, uint32_t tid, uint64_t obj,
                    uint64_t aux = 0) {
        DetectorEvent ev;
        ev.kind = kind;
        ev.tid = tid;
        ev.object = obj;
        ev.aux = aux;
        events.push_back(ev);
    };

    // Thread 0 forks 1..5; 0..4 read x concurrently (inflation to a
    // read VC that spills past 4 inline components), then thread 5
    // writes -> read-write race against the shared read clock.
    for (uint32_t c = 1; c <= 5; ++c)
        sync(DetectorEvent::kFork, 0, 0, c);
    access(0, 0x1000, false, 1, 10);
    for (uint32_t c = 1; c <= 4; ++c)
        access(c, 0x1000, false, 2 + c, 11 + c);
    access(5, 0x1000, true, 20, 30);

    // Lock-ordered handoff on y: no race.
    sync(DetectorEvent::kAcquire, 1, 0x9000);
    access(1, 0x2000, true, 30, 40);
    sync(DetectorEvent::kRelease, 1, 0x9000);
    sync(DetectorEvent::kAcquire, 2, 0x9000);
    access(2, 0x2000, true, 31, 41);
    sync(DetectorEvent::kRelease, 2, 0x9000);

    // Same address, two lifetimes: write in lifetime A, free,
    // re-malloc, write in lifetime B by another thread — must NOT race.
    sync(DetectorEvent::kAlloc, 1, 0x3000, 64);
    access(1, 0x3008, true, 40, 50);
    sync(DetectorEvent::kFree, 1, 0x3000);
    sync(DetectorEvent::kAlloc, 2, 0x3000, 64);
    access(2, 0x3008, true, 41, 51);

    // Join edges order the final accesses: no race after joins.
    for (uint32_t c = 1; c <= 5; ++c)
        sync(DetectorEvent::kExit, c, 0);
    for (uint32_t c = 1; c <= 5; ++c)
        sync(DetectorEvent::kJoinEv, 0, 0, c);
    access(0, 0x1000, true, 50, 60);

    FastTrack ft;
    RefFastTrack ref;
    replayEvents(ft, events);
    replayEvents(ref, events);
    expectIdenticalReports(ft, ref);

    // The scenario above must actually exercise the structures it
    // targets: one read-share inflation, one race.
    EXPECT_GE(ft.stats().read_shares, 1u);
    EXPECT_GE(ft.stats().vc_spills, 1u);
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrackLimits, TidBeyondEpochFieldIsFatal)
{
    FastTrack ft;
    // The largest representable tid works...
    MemAccess ma;
    ma.tid = Epoch::kMaxThreads - 1;
    ma.addr = 0x1000;
    EXPECT_NO_THROW(ft.access(ma));
    // ...one past it would alias tid 0's epochs: checked fatal error.
    MemAccess bad = ma;
    bad.tid = Epoch::kMaxThreads;
    EXPECT_THROW(ft.access(bad), std::runtime_error);
    EXPECT_THROW(ft.acquire(Epoch::kMaxThreads + 5, 0x9000),
                 std::runtime_error);
    EXPECT_THROW(ft.fork(0, Epoch::kMaxThreads), std::runtime_error);
}

} // namespace

/**
 * @file
 * Unit tests for the support library (rng, stats, bitstream, log).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/bitstream.hh"
#include "support/log.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace prorace {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(5);
    Rng child = parent.fork();
    EXPECT_NE(parent.next(), child.next());
}

TEST(Stats, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
    EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Stats, StddevOfConstantIsZero)
{
    EXPECT_DOUBLE_EQ(stddev({3, 3, 3, 3}), 0.0);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3, 1, 2}), 3.0);
}

TEST(Stats, RunningStatMatchesBatch)
{
    RunningStat rs;
    for (double x : {1.0, 2.0, 3.0, 10.0})
        rs.add(x);
    EXPECT_EQ(rs.count(), 4u);
    EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
    EXPECT_DOUBLE_EQ(rs.min(), 1.0);
    EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

TEST(Stats, FormatOverheadMatchesPaperStyle)
{
    EXPECT_EQ(formatOverhead(0.026), "2.6%");
    EXPECT_EQ(formatOverhead(1.85), "2.85x");
}

TEST(Bitstream, RoundTripBits)
{
    BitWriter w;
    w.putBit(true);
    w.putBit(false);
    w.putBits(0b1011, 4);
    w.putByte(0xab);
    w.putU64(0x0123456789abcdefull);

    BitReader r(w.bytes(), w.bitCount());
    EXPECT_TRUE(r.getBit());
    EXPECT_FALSE(r.getBit());
    EXPECT_EQ(r.getBits(4), 0b1011u);
    EXPECT_EQ(r.getByte(), 0xab);
    EXPECT_EQ(r.getU64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.atEnd());
}

TEST(Bitstream, ByteCountRoundsUp)
{
    BitWriter w;
    w.putBits(0x7, 3);
    EXPECT_EQ(w.bitCount(), 3u);
    EXPECT_EQ(w.byteCount(), 1u);
    w.putBits(0x1f, 6);
    EXPECT_EQ(w.byteCount(), 2u);
}

TEST(Bitstream, ManyAlternatingBits)
{
    BitWriter w;
    for (int i = 0; i < 1000; ++i)
        w.putBit(i % 3 == 0);
    BitReader r(w.bytes(), w.bitCount());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(r.getBit(), i % 3 == 0) << "bit " << i;
}

TEST(Bitstream, ReadPastEndPanics)
{
    BitWriter w;
    w.putBit(true);
    BitReader r(w.bytes(), w.bitCount());
    r.getBit();
    EXPECT_THROW(r.getBit(), std::logic_error);
}

TEST(Log, PanicThrowsLogicError)
{
    EXPECT_THROW(PRORACE_PANIC("boom"), std::logic_error);
}

TEST(Log, FatalThrowsRuntimeError)
{
    EXPECT_THROW(PRORACE_FATAL("bad config"), std::runtime_error);
}

TEST(Log, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(PRORACE_ASSERT(1 + 1 == 2, "math"));
    EXPECT_THROW(PRORACE_ASSERT(1 + 1 == 3, "math"), std::logic_error);
}

} // namespace
} // namespace prorace

/**
 * @file
 * Fault-tolerant ingestion: damaged traces must degrade the analysis,
 * never crash it. Sweeps truncation across every byte boundary, flips
 * seeded random bits, drops whole segments, and checks the two recovery
 * layers underneath — segment skip-over in trace/trace_file and PSB
 * resynchronization in pmu/pt_decode — both in isolation and through
 * the full pipeline on a racy-bug trace.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel_offline.hh"
#include "core/pipeline.hh"
#include "fault_injection.hh"
#include "pmu/pt_decode.hh"
#include "trace/trace_file.hh"
#include "workload/racybugs.hh"

namespace prorace {
namespace {

/** One traced racy-bug run, shared by the tests that only read it. */
struct TracedBug {
    workload::Workload workload;
    core::PipelineConfig cfg;
    std::vector<uint8_t> bytes;
};

TracedBug
traceBug(const char *id, uint64_t period, uint64_t seed,
         double scale = 0.5)
{
    TracedBug tb{workload::makeRacyBug(id, scale), {}, {}};
    tb.cfg = core::proRaceConfig(period, seed,
                                 tb.workload.pt_filter);
    core::RunArtifacts run = core::Session::run(
        *tb.workload.program, tb.workload.setup, tb.cfg.session);
    tb.bytes = trace::serializeTrace(run.trace);
    return tb;
}

/** A small default subject for the format-level tests. */
const TracedBug &
smallTrace()
{
    static const TracedBug tb = traceBug("pfscan", 1000, 7);
    return tb;
}

TEST(FaultTolerance, CleanTraceHasNoLossAndRoundTrips)
{
    const TracedBug &tb = smallTrace();
    auto loaded = trace::readTrace(tb.bytes);
    ASSERT_TRUE(loaded.ok());
    EXPECT_FALSE(loaded.value().loss.hasLoss());
    // Ingest must be lossless: writing the trace back reproduces the
    // file byte for byte.
    EXPECT_EQ(trace::serializeTrace(loaded.value().trace), tb.bytes);
}

TEST(FaultTolerance, TruncationAtEveryByteNeverCrashes)
{
    // Clip the file at every possible byte boundary — every record
    // kind, header field, and payload gets cut mid-way somewhere in
    // this sweep. Each clip must yield a clean Result (value or
    // error), never an abort or exception.
    const TracedBug &tb = smallTrace();
    size_t values = 0, errors = 0;
    for (size_t keep = 0; keep < tb.bytes.size(); ++keep) {
        std::vector<uint8_t> clipped = tb.bytes;
        fault::truncateAt(clipped, keep);
        auto loaded = trace::readTrace(clipped);
        if (!loaded.ok()) {
            ++errors;
            continue;
        }
        ++values;
        // Anything short of the full file must be flagged as damaged.
        EXPECT_TRUE(loaded.value().loss.hasLoss()) << "keep=" << keep;
    }
    // Short prefixes (no readable meta) are errors; once the meta
    // segment fits, clips must ingest with loss accounting.
    EXPECT_GT(errors, 0u);
    EXPECT_GT(values, 0u);
}

TEST(FaultTolerance, SeededBitFlipsNeverCrash)
{
    const TracedBug &tb = smallTrace();
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        for (size_t flips : {1u, 4u, 16u}) {
            std::vector<uint8_t> damaged = tb.bytes;
            Rng rng(seed * 1000 + flips);
            fault::flipRandomBits(damaged, flips, rng);
            auto loaded = trace::readTrace(damaged);
            if (!loaded.ok())
                continue; // flipped the version/meta: clean reject
            // The surviving records must flow through the full
            // analysis without throwing.
            core::OfflineAnalyzer analyzer(*tb.workload.program,
                                           tb.cfg.offline);
            analyzer.analyze(loaded.value().trace);
        }
    }
}

TEST(FaultTolerance, DroppedSegmentsAreReconciledAgainstMeta)
{
    const TracedBug &tb = smallTrace();
    const auto spans = fault::mapSegments(tb.bytes);
    // Removing one PEBS and one sync segment outright (the dropped
    // aux-buffer chunk) must surface as record loss, not as an error.
    std::vector<uint8_t> damaged(tb.bytes.begin(),
                                 tb.bytes.begin() + 8);
    bool pebs_gone = false, sync_gone = false;
    for (const fault::SegmentSpan &s : spans) {
        const bool drop = (s.kind == 2 && !pebs_gone) ||
                          (s.kind == 3 && !sync_gone);
        if (drop) {
            pebs_gone = pebs_gone || s.kind == 2;
            sync_gone = sync_gone || s.kind == 3;
            continue;
        }
        damaged.insert(damaged.end(), tb.bytes.begin() + s.begin,
                       tb.bytes.begin() + s.end);
    }
    ASSERT_TRUE(pebs_gone && sync_gone) << "trace lacks pebs/sync";
    auto loaded = trace::readTrace(damaged);
    ASSERT_TRUE(loaded.ok());
    EXPECT_GT(loaded.value().loss.pebs_dropped, 0u);
    EXPECT_GT(loaded.value().loss.sync_dropped, 0u);
    EXPECT_FALSE(loaded.value().loss.truncated);
}

TEST(FaultTolerance, PtResyncRecoversAfterMidStreamDamage)
{
    const TracedBug &tb = smallTrace();
    // Clean decode: the writer plants PSB sync points and the decoder
    // sees them without ever resyncing.
    auto clean = trace::readTrace(tb.bytes);
    ASSERT_TRUE(clean.ok());
    pmu::PtDecodeStats clean_stats;
    auto clean_paths =
        pmu::decodePt(*tb.workload.program, tb.cfg.offline.pt_filter,
                      clean.value().trace, &clean_stats);
    EXPECT_GT(clean_stats.psb_packets, 0u);
    EXPECT_EQ(clean_stats.resyncs, 0u);
    ASSERT_FALSE(clean_paths.empty());

    // Smash one byte in the middle of the largest PT payload. The
    // reader salvages the stream (CRC is stale) and the decoder must
    // scan to the next PSB instead of dying or looping.
    const fault::SegmentSpan *pt = nullptr;
    const auto spans = fault::mapSegments(tb.bytes);
    for (const fault::SegmentSpan &s : spans) {
        if (s.kind == 4 && (!pt || s.end - s.begin > pt->end - pt->begin))
            pt = &s;
    }
    ASSERT_NE(pt, nullptr);
    std::vector<uint8_t> damaged = tb.bytes;
    const size_t mid = pt->begin + (pt->end - pt->begin) / 2;
    damaged[mid] ^= 0xff;

    auto loaded = trace::readTrace(damaged);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().loss.pt_streams_damaged, 1u);
    pmu::PtDecodeStats stats;
    auto paths =
        pmu::decodePt(*tb.workload.program, tb.cfg.offline.pt_filter,
                      loaded.value().trace, &stats);
    EXPECT_GE(stats.resyncs, 1u);
    // Resynchronization keeps the intact packets: paths still decode.
    uint64_t entries = 0;
    for (const auto &[tid, path] : paths)
        entries += path.insns.size();
    EXPECT_GT(entries, 0u);
}

TEST(FaultTolerance, MidTracePebsLossStillDetectsRace)
{
    // Dense sampling gives several PEBS chunks; losing a middle one
    // must be recorded as loss while the races evidenced by the
    // surviving chunks are still found. Schedules are uncontrolled, so
    // scan a few seeds for a trace whose bug detection survives the
    // damage (the clean trace must detect it first).
    bool proved = false;
    for (uint64_t seed = 1; seed <= 4 && !proved; ++seed) {
        TracedBug tb = traceBug("apache-25520", 100, seed, 0.8);
        auto clean = trace::readTrace(tb.bytes);
        ASSERT_TRUE(clean.ok());
        core::OfflineAnalyzer analyzer(*tb.workload.program,
                                       tb.cfg.offline);
        core::OfflineResult base =
            analyzer.analyze(clean.value().trace);
        if (!workload::bugDetected(tb.workload.bugs[0], base.report))
            continue;

        std::vector<const fault::SegmentSpan *> pebs;
        auto spans = fault::mapSegments(tb.bytes);
        for (const fault::SegmentSpan &s : spans) {
            if (s.kind == 2)
                pebs.push_back(&s);
        }
        ASSERT_GT(pebs.size(), 2u) << "expected several PEBS chunks";
        const fault::SegmentSpan *victim = pebs[pebs.size() / 2];
        std::vector<uint8_t> damaged = tb.bytes;
        damaged[victim->begin + 30] ^= 0x01; // payload bit flip

        auto loaded = trace::readTrace(damaged);
        ASSERT_TRUE(loaded.ok());
        EXPECT_GT(loaded.value().loss.pebs_dropped, 0u);
        core::OfflineResult hurt =
            analyzer.analyze(loaded.value().trace);
        proved = workload::bugDetected(tb.workload.bugs[0],
                                       hurt.report);
    }
    EXPECT_TRUE(proved)
        << "race lost in every seed after one-chunk PEBS loss";
}

TEST(FaultTolerance, UninterpretableInputsAreCleanErrors)
{
    using trace::TraceErrorKind;
    // Foreign bytes: not a trace at all.
    std::vector<uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto bad_magic = trace::readTrace(garbage);
    ASSERT_FALSE(bad_magic.ok());
    EXPECT_EQ(bad_magic.error().kind, TraceErrorKind::kBadMagic);

    // Old/foreign version: rejected with advice, not misparsed.
    std::vector<uint8_t> old = smallTrace().bytes;
    old[4] = 3;
    auto bad_version = trace::readTrace(old);
    ASSERT_FALSE(bad_version.ok());
    EXPECT_EQ(bad_version.error().kind, TraceErrorKind::kBadVersion);

    // Too short for any segment.
    std::vector<uint8_t> stub(smallTrace().bytes.begin(),
                              smallTrace().bytes.begin() + 8);
    EXPECT_FALSE(trace::readTrace(stub).ok());

    // Damaged meta payload: the one segment the reader cannot lose.
    std::vector<uint8_t> meta_hit = smallTrace().bytes;
    auto spans = fault::mapSegments(meta_hit);
    ASSERT_EQ(spans[0].kind, 1u);
    meta_hit[spans[0].begin + 26] ^= 0x10;
    auto bad_meta = trace::readTrace(meta_hit);
    ASSERT_FALSE(bad_meta.ok());
    EXPECT_EQ(bad_meta.error().kind, TraceErrorKind::kCorruptMeta);

    // Unreadable path: kIo naming the file.
    auto no_file = trace::readTraceFile("/nonexistent/trace.bin");
    ASSERT_FALSE(no_file.ok());
    EXPECT_EQ(no_file.error().kind, TraceErrorKind::kIo);
    EXPECT_NE(no_file.error().format().find("/nonexistent/trace.bin"),
              std::string::npos);
}

TEST(FaultTolerance, WriterFatalNamesThePath)
{
    auto loaded = trace::readTrace(smallTrace().bytes);
    ASSERT_TRUE(loaded.ok());
    try {
        trace::saveTrace(loaded.value().trace,
                         "/nonexistent-dir/out.trace");
        FAIL() << "saveTrace to an unwritable path must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent-dir"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultTolerance, AnalyzeFileSurfacesErrorsAndLoss)
{
    const TracedBug &tb = smallTrace();
    const std::string path = "/tmp/prorace_fault_test.trace";

    // Damaged-but-usable file: analysis runs, loss is surfaced.
    std::vector<uint8_t> damaged = tb.bytes;
    auto spans = fault::mapSegments(damaged);
    for (const fault::SegmentSpan &s : spans) {
        if (s.kind == 2) {
            damaged[s.begin + 30] ^= 0x02;
            break;
        }
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(damaged.data(), 1, damaged.size(), f);
    std::fclose(f);

    core::ParallelOfflineAnalyzer analyzer(*tb.workload.program,
                                           tb.cfg.offline);
    auto result = analyzer.analyzeFile(path);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().ingest_loss.hasLoss());
    std::remove(path.c_str());

    auto missing = analyzer.analyzeFile("/nonexistent/trace.bin");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().kind, trace::TraceErrorKind::kIo);
}

} // namespace
} // namespace prorace

/**
 * @file
 * Unit tests for the FastTrack detector, vector clocks, and reports.
 */

#include <gtest/gtest.h>

#include "detect/fasttrack.hh"
#include "detect/report.hh"
#include "detect/vector_clock.hh"

namespace prorace::detect {
namespace {

MemAccess
acc(uint32_t tid, uint64_t addr, bool is_write, uint32_t insn = 0,
    bool atomic = false)
{
    MemAccess ma;
    ma.tid = tid;
    ma.addr = addr;
    ma.is_write = is_write;
    ma.insn_index = insn;
    ma.is_atomic = atomic;
    return ma;
}

TEST(VectorClock, GetSetJoin)
{
    VectorClock a, b;
    a.set(0, 5);
    a.set(3, 2);
    b.set(0, 3);
    b.set(1, 9);
    a.join(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 9u);
    EXPECT_EQ(a.get(2), 0u);
    EXPECT_EQ(a.get(3), 2u);
    EXPECT_EQ(a.get(100), 0u);
}

TEST(VectorClock, LessOrEqual)
{
    VectorClock a, b;
    a.set(0, 1);
    a.set(1, 2);
    b.set(0, 1);
    b.set(1, 3);
    EXPECT_TRUE(a.lessOrEqual(b));
    EXPECT_FALSE(b.lessOrEqual(a));
    VectorClock empty;
    EXPECT_TRUE(empty.lessOrEqual(a));
}

TEST(Epoch, PackingAndHappensBefore)
{
    Epoch e(7, 123);
    EXPECT_EQ(e.tid(), 7u);
    EXPECT_EQ(e.clock(), 123u);
    EXPECT_FALSE(e.isZero());
    EXPECT_TRUE(Epoch().isZero());

    VectorClock vc;
    vc.set(7, 122);
    EXPECT_FALSE(e.happensBefore(vc));
    vc.set(7, 123);
    EXPECT_TRUE(e.happensBefore(vc));
}

TEST(FastTrack, DetectsUnsynchronizedWriteWrite)
{
    FastTrack ft;
    ft.access(acc(0, 0x1000, true, 10));
    ft.access(acc(1, 0x1000, true, 20));
    ASSERT_EQ(ft.report().size(), 1u);
    EXPECT_TRUE(ft.report().containsPair(10, 20));
    EXPECT_TRUE(ft.report().races()[0].current.is_write);
}

TEST(FastTrack, DetectsWriteReadAndReadWrite)
{
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, true, 1));
        ft.access(acc(1, 0x1000, false, 2));
        EXPECT_EQ(ft.report().size(), 1u);
    }
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, false, 1));
        ft.access(acc(1, 0x1000, true, 2));
        EXPECT_EQ(ft.report().size(), 1u);
    }
}

TEST(FastTrack, NoRaceUnderCommonLock)
{
    FastTrack ft;
    const uint64_t m = 0x9000;
    ft.acquire(0, m);
    ft.access(acc(0, 0x1000, true, 1));
    ft.release(0, m);
    ft.acquire(1, m);
    ft.access(acc(1, 0x1000, true, 2));
    ft.release(1, m);
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, DifferentLocksDoNotOrder)
{
    FastTrack ft;
    ft.acquire(0, 0x9000);
    ft.access(acc(0, 0x1000, true, 1));
    ft.release(0, 0x9000);
    ft.acquire(1, 0x9100);
    ft.access(acc(1, 0x1000, true, 2));
    ft.release(1, 0x9100);
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, ForkJoinCreateHappensBefore)
{
    FastTrack ft;
    ft.access(acc(0, 0x1000, true, 1));
    ft.fork(0, 1);
    ft.access(acc(1, 0x1000, true, 2)); // ordered after parent's write
    ft.threadExit(1);
    ft.join(0, 1);
    ft.access(acc(0, 0x1000, false, 3)); // ordered after child's write
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, SiblingsWithoutSyncRace)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, true, 1));
    ft.access(acc(2, 0x1000, true, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, ConcurrentReadsAloneAreNotARace)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1));
    ft.access(acc(2, 0x1000, false, 2));
    ft.access(acc(0, 0x1000, false, 3));
    EXPECT_TRUE(ft.report().empty());
    EXPECT_GE(ft.stats().read_shares, 1u);
}

TEST(FastTrack, WriteAfterSharedReadsRaces)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1));
    ft.access(acc(2, 0x1000, false, 2));
    // Thread 0 writes without joining the readers: read-write race.
    ft.access(acc(0, 0x1000, true, 3));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, WriteAfterJoinedSharedReadsIsClean)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1));
    ft.access(acc(2, 0x1000, false, 2));
    ft.threadExit(1);
    ft.threadExit(2);
    ft.join(0, 1);
    ft.join(0, 2);
    ft.access(acc(0, 0x1000, true, 3));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, BarrierOrdersPhases)
{
    FastTrack ft;
    const uint64_t bar = 0xb000;
    ft.fork(0, 1);
    // Phase 1: each thread writes its own slot... then both write the
    // same location in phase 2 after the barrier; barrier orders phase 1
    // writes before phase 2 accesses.
    ft.access(acc(0, 0x1000, true, 1));
    ft.barrierEnter(0, bar);
    ft.barrierEnter(1, bar);
    ft.barrierExit(0, bar);
    ft.barrierExit(1, bar);
    ft.access(acc(1, 0x1000, false, 2)); // reads t0's phase-1 write
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, CondVarSignalWakeEdge)
{
    // Modeled as the offline analyzer feeds it: signaler releases the cv
    // object, waiter acquires it on wake.
    FastTrack ft;
    const uint64_t cv = 0xc000, m = 0x9000;
    ft.fork(0, 1);
    // waiter: lock, (condition false), wait begin => release mutex
    ft.acquire(1, m);
    ft.release(1, m);
    // signaler: lock, write shared, signal, unlock
    ft.acquire(0, m);
    ft.access(acc(0, 0x1000, true, 1));
    ft.release(0, cv); // signal
    ft.release(0, m);
    // waiter wakes: acquires mutex and cv clock, then reads
    ft.acquire(1, m);
    ft.acquire(1, cv);
    ft.access(acc(1, 0x1000, false, 2));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, AtomicPairIsExcludedMixedIsNot)
{
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, true, 1, true));
        ft.access(acc(1, 0x1000, true, 2, true));
        EXPECT_TRUE(ft.report().empty()) << "atomic-atomic is not a race";
    }
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, true, 1, true));
        ft.access(acc(1, 0x1000, true, 2, false));
        EXPECT_EQ(ft.report().size(), 1u) << "atomic-plain is a race";
    }
}

TEST(FastTrack, MallocFreeSuppressesAddressReuseFalsePositive)
{
    // Thread 0 uses an object, frees it; the allocator hands the same
    // address to thread 1. Without allocation tracking this pairs the
    // two lifetimes into a bogus race (paper §4.3).
    FastTrack ft;
    const uint64_t blk = 0x1000000;
    ft.fork(0, 1);
    ft.allocate(0, blk, 64);
    ft.access(acc(0, blk + 16, true, 1));
    ft.deallocate(0, blk);
    ft.allocate(1, blk, 64);
    ft.access(acc(1, blk + 16, true, 2));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, WithoutFreeTrackingSameSequenceWouldRace)
{
    // Sanity inverse of the previous test: no allocation events => race.
    FastTrack ft;
    const uint64_t blk = 0x1000000;
    ft.fork(0, 1);
    ft.access(acc(0, blk + 16, true, 1));
    ft.access(acc(1, blk + 16, true, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, GranuleOverlapDetected)
{
    // A 1-byte access overlapping an 8-byte write in the same granule.
    FastTrack ft;
    ft.access(acc(0, 0x1000, true, 1)); // 8 bytes at 0x1000
    MemAccess narrow = acc(1, 0x1004, false, 2);
    narrow.width = 1;
    ft.access(narrow);
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, StraddlingAccessChecksBothGranules)
{
    FastTrack ft;
    MemAccess wide = acc(0, 0x1004, true, 1);
    wide.width = 8; // covers granules 0x1000 and 0x1008
    ft.access(wide);
    ft.access(acc(1, 0x1008, false, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, SameThreadNeverRacesWithItself)
{
    FastTrack ft;
    for (int i = 0; i < 10; ++i)
        ft.access(acc(0, 0x1000, i % 2 == 0, 1));
    EXPECT_TRUE(ft.report().empty());
    EXPECT_GT(ft.stats().epoch_fast_path, 0u);
}

TEST(RaceReport, DeduplicatesInstructionPairs)
{
    RaceReport r;
    DataRace race;
    race.addr = 0x1000;
    race.prior = {0, 10, true, 0, AccessOrigin::kSampled};
    race.current = {1, 20, true, 0, AccessOrigin::kForward};
    r.add(race);
    r.add(race);
    std::swap(race.prior.insn_index, race.current.insn_index);
    r.add(race); // reversed pair is the same static race
    EXPECT_EQ(r.size(), 1u);
    EXPECT_TRUE(r.containsPair(20, 10));
    EXPECT_TRUE(r.containsInsn(10));
    EXPECT_FALSE(r.containsInsn(11));
    EXPECT_TRUE(r.containsAddressRange(0x0ff8, 16));
    EXPECT_FALSE(r.containsAddressRange(0x2000, 8));
}

TEST(RaceReport, FormatMentionsOrigins)
{
    RaceReport r;
    DataRace race;
    race.addr = 0x1000;
    race.prior = {0, 1, true, 5, AccessOrigin::kSampled};
    race.current = {1, 2, false, 9, AccessOrigin::kBackward};
    r.add(race);
    const std::string text = r.format();
    EXPECT_NE(text.find("sampled"), std::string::npos);
    EXPECT_NE(text.find("backward-replay"), std::string::npos);
    EXPECT_NE(text.find("write"), std::string::npos);
}

} // namespace
} // namespace prorace::detect

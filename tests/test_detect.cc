/**
 * @file
 * Unit tests for the FastTrack detector, vector clocks, and reports.
 */

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "detect/fasttrack.hh"
#include "detect/fasttrack_ref.hh"
#include "detect/incremental.hh"
#include "detect/report.hh"
#include "detect/vector_clock.hh"
#include "support/journal.hh"

#include "testutil.hh"

namespace prorace::detect {
namespace {

MemAccess
acc(uint32_t tid, uint64_t addr, bool is_write, uint32_t insn = 0,
    bool atomic = false)
{
    MemAccess ma;
    ma.tid = tid;
    ma.addr = addr;
    ma.is_write = is_write;
    ma.insn_index = insn;
    ma.is_atomic = atomic;
    return ma;
}

TEST(VectorClock, GetSetJoin)
{
    VectorClock a, b;
    a.set(0, 5);
    a.set(3, 2);
    b.set(0, 3);
    b.set(1, 9);
    a.join(b);
    EXPECT_EQ(a.get(0), 5u);
    EXPECT_EQ(a.get(1), 9u);
    EXPECT_EQ(a.get(2), 0u);
    EXPECT_EQ(a.get(3), 2u);
    EXPECT_EQ(a.get(100), 0u);
}

TEST(VectorClock, LessOrEqual)
{
    VectorClock a, b;
    a.set(0, 1);
    a.set(1, 2);
    b.set(0, 1);
    b.set(1, 3);
    EXPECT_TRUE(a.lessOrEqual(b));
    EXPECT_FALSE(b.lessOrEqual(a));
    VectorClock empty;
    EXPECT_TRUE(empty.lessOrEqual(a));
}

TEST(Epoch, PackingAndHappensBefore)
{
    Epoch e(7, 123);
    EXPECT_EQ(e.tid(), 7u);
    EXPECT_EQ(e.clock(), 123u);
    EXPECT_FALSE(e.isZero());
    EXPECT_TRUE(Epoch().isZero());

    VectorClock vc;
    vc.set(7, 122);
    EXPECT_FALSE(e.happensBefore(vc));
    vc.set(7, 123);
    EXPECT_TRUE(e.happensBefore(vc));
}

TEST(FastTrack, DetectsUnsynchronizedWriteWrite)
{
    FastTrack ft;
    ft.access(acc(0, 0x1000, true, 10));
    ft.access(acc(1, 0x1000, true, 20));
    ASSERT_EQ(ft.report().size(), 1u);
    EXPECT_TRUE(ft.report().containsPair(10, 20));
    EXPECT_TRUE(ft.report().races()[0].current.is_write);
}

TEST(FastTrack, DetectsWriteReadAndReadWrite)
{
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, true, 1));
        ft.access(acc(1, 0x1000, false, 2));
        EXPECT_EQ(ft.report().size(), 1u);
    }
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, false, 1));
        ft.access(acc(1, 0x1000, true, 2));
        EXPECT_EQ(ft.report().size(), 1u);
    }
}

TEST(FastTrack, NoRaceUnderCommonLock)
{
    FastTrack ft;
    const uint64_t m = 0x9000;
    ft.acquire(0, m);
    ft.access(acc(0, 0x1000, true, 1));
    ft.release(0, m);
    ft.acquire(1, m);
    ft.access(acc(1, 0x1000, true, 2));
    ft.release(1, m);
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, DifferentLocksDoNotOrder)
{
    FastTrack ft;
    ft.acquire(0, 0x9000);
    ft.access(acc(0, 0x1000, true, 1));
    ft.release(0, 0x9000);
    ft.acquire(1, 0x9100);
    ft.access(acc(1, 0x1000, true, 2));
    ft.release(1, 0x9100);
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, ForkJoinCreateHappensBefore)
{
    FastTrack ft;
    ft.access(acc(0, 0x1000, true, 1));
    ft.fork(0, 1);
    ft.access(acc(1, 0x1000, true, 2)); // ordered after parent's write
    ft.threadExit(1);
    ft.join(0, 1);
    ft.access(acc(0, 0x1000, false, 3)); // ordered after child's write
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, SiblingsWithoutSyncRace)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, true, 1));
    ft.access(acc(2, 0x1000, true, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, ConcurrentReadsAloneAreNotARace)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1));
    ft.access(acc(2, 0x1000, false, 2));
    ft.access(acc(0, 0x1000, false, 3));
    EXPECT_TRUE(ft.report().empty());
    EXPECT_GE(ft.stats().read_shares, 1u);
}

TEST(FastTrack, WriteAfterSharedReadsRaces)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1));
    ft.access(acc(2, 0x1000, false, 2));
    // Thread 0 writes without joining the readers: read-write race.
    ft.access(acc(0, 0x1000, true, 3));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, WriteAfterJoinedSharedReadsIsClean)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1));
    ft.access(acc(2, 0x1000, false, 2));
    ft.threadExit(1);
    ft.threadExit(2);
    ft.join(0, 1);
    ft.join(0, 2);
    ft.access(acc(0, 0x1000, true, 3));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, BarrierOrdersPhases)
{
    FastTrack ft;
    const uint64_t bar = 0xb000;
    ft.fork(0, 1);
    // Phase 1: each thread writes its own slot... then both write the
    // same location in phase 2 after the barrier; barrier orders phase 1
    // writes before phase 2 accesses.
    ft.access(acc(0, 0x1000, true, 1));
    ft.barrierEnter(0, bar);
    ft.barrierEnter(1, bar);
    ft.barrierExit(0, bar);
    ft.barrierExit(1, bar);
    ft.access(acc(1, 0x1000, false, 2)); // reads t0's phase-1 write
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, CondVarSignalWakeEdge)
{
    // Modeled as the offline analyzer feeds it: signaler releases the cv
    // object, waiter acquires it on wake.
    FastTrack ft;
    const uint64_t cv = 0xc000, m = 0x9000;
    ft.fork(0, 1);
    // waiter: lock, (condition false), wait begin => release mutex
    ft.acquire(1, m);
    ft.release(1, m);
    // signaler: lock, write shared, signal, unlock
    ft.acquire(0, m);
    ft.access(acc(0, 0x1000, true, 1));
    ft.release(0, cv); // signal
    ft.release(0, m);
    // waiter wakes: acquires mutex and cv clock, then reads
    ft.acquire(1, m);
    ft.acquire(1, cv);
    ft.access(acc(1, 0x1000, false, 2));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, AtomicPairIsExcludedMixedIsNot)
{
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, true, 1, true));
        ft.access(acc(1, 0x1000, true, 2, true));
        EXPECT_TRUE(ft.report().empty()) << "atomic-atomic is not a race";
    }
    {
        FastTrack ft;
        ft.access(acc(0, 0x1000, true, 1, true));
        ft.access(acc(1, 0x1000, true, 2, false));
        EXPECT_EQ(ft.report().size(), 1u) << "atomic-plain is a race";
    }
}

TEST(FastTrack, MallocFreeSuppressesAddressReuseFalsePositive)
{
    // Thread 0 uses an object, frees it; the allocator hands the same
    // address to thread 1. Without allocation tracking this pairs the
    // two lifetimes into a bogus race (paper §4.3).
    FastTrack ft;
    const uint64_t blk = 0x1000000;
    ft.fork(0, 1);
    ft.allocate(0, blk, 64);
    ft.access(acc(0, blk + 16, true, 1));
    ft.deallocate(0, blk);
    ft.allocate(1, blk, 64);
    ft.access(acc(1, blk + 16, true, 2));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, WithoutFreeTrackingSameSequenceWouldRace)
{
    // Sanity inverse of the previous test: no allocation events => race.
    FastTrack ft;
    const uint64_t blk = 0x1000000;
    ft.fork(0, 1);
    ft.access(acc(0, blk + 16, true, 1));
    ft.access(acc(1, blk + 16, true, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, GranuleOverlapDetected)
{
    // A 1-byte access overlapping an 8-byte write in the same granule.
    FastTrack ft;
    ft.access(acc(0, 0x1000, true, 1)); // 8 bytes at 0x1000
    MemAccess narrow = acc(1, 0x1004, false, 2);
    narrow.width = 1;
    ft.access(narrow);
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, StraddlingAccessChecksBothGranules)
{
    FastTrack ft;
    MemAccess wide = acc(0, 0x1004, true, 1);
    wide.width = 8; // covers granules 0x1000 and 0x1008
    ft.access(wide);
    ft.access(acc(1, 0x1008, false, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, SameThreadNeverRacesWithItself)
{
    FastTrack ft;
    for (int i = 0; i < 10; ++i)
        ft.access(acc(0, 0x1000, i % 2 == 0, 1));
    EXPECT_TRUE(ft.report().empty());
    EXPECT_GT(ft.stats().epoch_fast_path, 0u);
}

TEST(FastTrack, RwlockConcurrentReadersThenWriterIsClean)
{
    // Readers overlap freely; the writer joins the accumulated read
    // clock at writeLock, ordering every unlocked read before it.
    FastTrack ft;
    const uint64_t rw = 0xa000;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.writeLock(0, rw);
    ft.access(acc(0, 0x1000, true, 1));
    ft.writeUnlock(0, rw);
    ft.readLock(1, rw);
    ft.access(acc(1, 0x1000, false, 2));
    ft.readUnlock(1, rw);
    ft.readLock(2, rw);
    ft.access(acc(2, 0x1000, false, 3));
    ft.readUnlock(2, rw);
    ft.writeLock(0, rw);
    ft.access(acc(0, 0x1000, true, 4));
    ft.writeUnlock(0, rw);
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, RwlockReadLockDoesNotOrderReadersWithEachOther)
{
    // The upgrade misuse: writing under a READ lock. Read-side
    // critical sections run concurrently, so two such writes race.
    FastTrack ft;
    const uint64_t rw = 0xa000;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.readLock(1, rw);
    ft.access(acc(1, 0x1000, true, 1));
    ft.readUnlock(1, rw);
    ft.readLock(2, rw);
    ft.access(acc(2, 0x1000, true, 2));
    ft.readUnlock(2, rw);
    EXPECT_EQ(ft.report().size(), 1u);
    EXPECT_TRUE(ft.report().containsPair(1, 2));
}

TEST(FastTrack, RwlockWriterWaitsForReadUnlockNotReadLock)
{
    // A read that happened under the read lock is ordered before the
    // next writeLock only because readUnlock deposited the reader's
    // clock; a reader that has not unlocked yet still races with a
    // concurrent write-side write. (The VM never schedules this —
    // wrlock blocks — but the clock algebra must be directional.)
    FastTrack ft;
    const uint64_t rw = 0xa000;
    ft.fork(0, 1);
    ft.readLock(1, rw);
    ft.access(acc(1, 0x1000, false, 1));
    // no readUnlock: the reader's clock was never published
    ft.writeLock(0, rw);
    ft.access(acc(0, 0x1000, true, 2));
    ft.writeUnlock(0, rw);
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, SemaphorePostWaitCreatesEdge)
{
    FastTrack ft;
    const uint64_t sem = 0x5000;
    ft.fork(0, 1);
    ft.access(acc(0, 0x1000, true, 1));
    ft.semPost(0, sem);
    ft.semWait(1, sem);
    ft.access(acc(1, 0x1000, false, 2));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, SemaphoreInitialCreditWaitHasNoEdge)
{
    // A wait satisfied by semInit credits (an empty post queue) carries
    // no happens-before: that is exactly what makes semaphore-as-mutex
    // misuse detectable.
    FastTrack ft;
    const uint64_t sem = 0x5000;
    ft.fork(0, 1);
    ft.semInit(0, sem, 2);
    ft.access(acc(0, 0x1000, true, 1));
    ft.semWait(1, sem);
    ft.access(acc(1, 0x1000, true, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, SemaphorePostsPairWithWaitsInFifoOrder)
{
    FastTrack ft;
    const uint64_t sem = 0x5000;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, true, 1)); // published by the FIRST post
    ft.semPost(1, sem);
    ft.access(acc(2, 0x2000, true, 2)); // published by the SECOND post
    ft.semPost(2, sem);
    // One wait consumes only the first post: 0x1000 is ordered,
    // 0x2000 is not.
    ft.semWait(0, sem);
    ft.access(acc(0, 0x1000, false, 3));
    ft.access(acc(0, 0x2000, false, 4));
    EXPECT_EQ(ft.report().size(), 1u);
    EXPECT_TRUE(ft.report().containsPair(2, 4));
}

TEST(FastTrack, SemInitDiscardsPendingPosts)
{
    FastTrack ft;
    const uint64_t sem = 0x5000;
    ft.fork(0, 1);
    ft.access(acc(0, 0x1000, true, 1));
    ft.semPost(0, sem);
    ft.semInit(0, sem, 0); // reinitialization clears the queue
    ft.semWait(1, sem);
    ft.access(acc(1, 0x1000, false, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, AcquireReleaseChainsThroughIntermediateThreads)
{
    // acq_rel RMWs continue the release sequence: t0's write reaches
    // t2 through t1's intermediate RMW on the same object.
    FastTrack ft;
    const uint64_t obj = 0x7000;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(0, 0x1000, true, 1));
    ft.acquireRelease(0, obj);
    ft.acquireRelease(1, obj);
    ft.acquireRelease(2, obj);
    ft.access(acc(2, 0x1000, false, 2));
    EXPECT_TRUE(ft.report().empty());
}

TEST(FastTrack, AcquireWithoutPriorReleaseHasNoEdge)
{
    FastTrack ft;
    ft.fork(0, 1);
    ft.access(acc(0, 0x1000, true, 1));
    ft.acquire(1, 0x7000); // nothing was ever released to this object
    ft.access(acc(1, 0x1000, false, 2));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(FastTrack, SharedAtomicReadersKeepSuppressionExact)
{
    // Read-shared state with MIXED plain and atomic readers: an atomic
    // write must race with the plain reader but stay suppressed against
    // the atomic reader — one plain reader must not poison the
    // atomic-vs-atomic suppression (and vice versa).
    FastTrack ft;
    ft.fork(0, 1);
    ft.fork(0, 2);
    ft.access(acc(1, 0x1000, false, 1, true));  // atomic reader
    ft.access(acc(2, 0x1000, false, 2, false)); // plain reader
    ft.access(acc(0, 0x1000, true, 3, true));   // atomic writer
    ASSERT_EQ(ft.report().size(), 1u);
    EXPECT_TRUE(ft.report().containsPair(2, 3))
        << "the reported pair must name the PLAIN reader";
}

TEST(FastTrack, SharedAllAtomicReadersSuppressAtomicWriteOnly)
{
    {
        FastTrack ft;
        ft.fork(0, 1);
        ft.fork(0, 2);
        ft.access(acc(1, 0x1000, false, 1, true));
        ft.access(acc(2, 0x1000, false, 2, true));
        ft.access(acc(0, 0x1000, true, 3, true));
        EXPECT_TRUE(ft.report().empty());
    }
    {
        FastTrack ft;
        ft.fork(0, 1);
        ft.fork(0, 2);
        ft.access(acc(1, 0x1000, false, 1, true));
        ft.access(acc(2, 0x1000, false, 2, true));
        ft.access(acc(0, 0x1000, true, 3, false)); // plain write races
        EXPECT_EQ(ft.report().size(), 1u);
    }
}

/** Serialized detector image, for byte-identity comparisons. */
std::vector<uint8_t>
stateBytes(const FastTrack &ft)
{
    support::ByteWriter w;
    ft.serializeState(w);
    return w.take();
}

TEST(FastTrack, SerializeRestoreRoundTripsRwAndSemState)
{
    // Checkpoint with live rwlock read-clocks, a non-empty semaphore
    // post queue, and a read-shared granule; the restored detector must
    // behave identically on the rest of the stream.
    FastTrack a;
    const uint64_t rw = 0xa000, sem = 0x5000;
    a.fork(0, 1);
    a.fork(0, 2);
    a.readLock(1, rw);
    a.access(acc(1, 0x1000, false, 1));
    a.readUnlock(1, rw);
    a.access(acc(2, 0x1000, false, 2)); // inflates to read-shared
    a.access(acc(1, 0x2000, true, 3));
    a.semPost(1, sem);
    a.semPost(1, sem);

    support::ByteWriter w;
    a.serializeState(w);
    const std::vector<uint8_t> image = w.take();
    FastTrack b;
    support::ByteReader r(image.data(), image.size());
    ASSERT_TRUE(b.restoreState(r));

    const auto replay_suffix = [&](FastTrack &ft) {
        ft.semWait(0, sem);
        ft.access(acc(0, 0x2000, false, 4)); // ordered by the post
        ft.writeLock(0, rw);
        // Ordered with t1's read via readUnlock, but t2 never
        // unlocked: its shared read still races.
        ft.access(acc(0, 0x1000, true, 5));
        ft.writeUnlock(0, rw);
        ft.access(acc(1, 0x3000, true, 6));
        ft.access(acc(2, 0x3000, true, 7)); // unordered: races
    };
    replay_suffix(a);
    replay_suffix(b);

    EXPECT_EQ(a.report().size(), 2u);
    EXPECT_TRUE(a.report().containsPair(2, 5));
    EXPECT_TRUE(a.report().containsPair(6, 7));
    EXPECT_EQ(stateBytes(a), stateBytes(b));
}

TEST(FastTrack, RestoreRejectsTruncatedSemSection)
{
    FastTrack a;
    a.fork(0, 1);
    a.semPost(1, 0x5000);
    support::ByteWriter w;
    a.serializeState(w);
    std::vector<uint8_t> image = w.take();
    image.resize(image.size() / 2);
    FastTrack b;
    b.access(acc(0, 0x9000, true, 9));
    support::ByteReader r(image.data(), image.size());
    EXPECT_FALSE(b.restoreState(r));
    // The failed restore must leave b exactly as it was.
    EXPECT_EQ(b.report().size(), 0u);
    EXPECT_EQ(b.stats().writes, 1u);
}

/** One randomized event over the full sync vocabulary. */
template <typename Detector>
void
applyRandomEvent(Detector &ft, std::mt19937_64 &rng, uint64_t tsc)
{
    const uint32_t tid = static_cast<uint32_t>(rng() % 4);
    const uint64_t obj = 0xa000 + (rng() % 3) * 0x100;
    const uint64_t addr = 0x1000 + (rng() % 6) * 8;
    switch (rng() % 14) {
      case 0: ft.acquire(tid, obj); break;
      case 1: ft.release(tid, obj); break;
      case 2: ft.readLock(tid, obj); break;
      case 3: ft.readUnlock(tid, obj); break;
      case 4: ft.writeLock(tid, obj); break;
      case 5: ft.writeUnlock(tid, obj); break;
      case 6: ft.semInit(tid, obj, rng() % 3); break;
      case 7: ft.semWait(tid, obj); break;
      case 8: ft.semPost(tid, obj); break;
      case 9: ft.acquireRelease(tid, obj); break;
      default: {
        MemAccess ma;
        ma.tid = tid;
        ma.addr = addr;
        ma.is_write = rng() % 2 == 0;
        ma.is_atomic = rng() % 4 == 0;
        ma.insn_index = static_cast<uint32_t>(rng() % 64);
        ma.tsc = tsc;
        ft.access(ma);
        break;
      }
    }
}

std::set<std::pair<uint32_t, uint32_t>>
reportPairs(const RaceReport &report)
{
    std::set<std::pair<uint32_t, uint32_t>> pairs;
    for (const DataRace &race : report.races()) {
        const uint32_t a = race.prior.insn_index;
        const uint32_t b = race.current.insn_index;
        pairs.emplace(std::min(a, b), std::max(a, b));
    }
    return pairs;
}

TEST(Differential, FastTrackMatchesReferenceOnRandomSyncStreams)
{
    // The optimized detector (epochs, inline clocks, FlatMap) and the
    // naive reference (full maps, deques) must report identical race
    // pair sets on arbitrary streams over the whole sync vocabulary.
    for (uint64_t seed : testutil::testSeeds({101ull, 202ull, 303ull})) {
        PRORACE_SEED_TRACE(seed);
        std::mt19937_64 rng(seed);
        FastTrack fast;
        RefFastTrack ref;
        for (uint32_t t = 1; t < 4; ++t) {
            fast.fork(0, t);
            ref.fork(0, t);
        }
        for (uint64_t i = 0; i < 3000; ++i) {
            std::mt19937_64 fork_a = rng; // same stream for both
            applyRandomEvent(fast, fork_a, i);
            applyRandomEvent(ref, rng, i);
        }
        EXPECT_EQ(reportPairs(fast.report()), reportPairs(ref.report()))
            << "seed " << seed;
        EXPECT_EQ(fast.report().size(), ref.report().size());
    }
}

TEST(Differential, IncrementalMatchesOneShotOnRandomSyncStreams)
{
    // Streaming with batch boundaries and epoch GC enabled must be
    // report-identical to one-shot analysis of the same events.
    for (uint64_t seed : testutil::testSeeds({111ull, 222ull})) {
        PRORACE_SEED_TRACE(seed);
        IncrementalOptions opts;
        opts.enable_gc = true;
        opts.gc_min_events = 256;
        IncrementalFastTrack inc(opts);
        FastTrack oneshot;
        for (uint32_t t = 0; t < 4; ++t)
            inc.requireThread(t);
        for (uint32_t t = 1; t < 4; ++t) {
            inc.fork(0, t);
            oneshot.fork(0, t);
        }
        std::mt19937_64 rng(seed);
        for (uint64_t i = 0; i < 4000; ++i) {
            std::mt19937_64 fork_a = rng;
            applyRandomEvent(inc, fork_a, i);
            applyRandomEvent(oneshot, rng, i);
            if (i % 512 == 511)
                inc.batchBoundary(i + 1);
        }
        inc.finish();
        EXPECT_EQ(reportPairs(inc.report()), reportPairs(oneshot.report()))
            << "seed " << seed;
    }
}

TEST(RaceReport, DeduplicatesInstructionPairs)
{
    RaceReport r;
    DataRace race;
    race.addr = 0x1000;
    race.prior = {0, 10, true, 0, AccessOrigin::kSampled};
    race.current = {1, 20, true, 0, AccessOrigin::kForward};
    r.add(race);
    r.add(race);
    std::swap(race.prior.insn_index, race.current.insn_index);
    r.add(race); // reversed pair is the same static race
    EXPECT_EQ(r.size(), 1u);
    EXPECT_TRUE(r.containsPair(20, 10));
    EXPECT_TRUE(r.containsInsn(10));
    EXPECT_FALSE(r.containsInsn(11));
    EXPECT_TRUE(r.containsAddressRange(0x0ff8, 16));
    EXPECT_FALSE(r.containsAddressRange(0x2000, 8));
}

TEST(RaceReport, FormatMentionsOrigins)
{
    RaceReport r;
    DataRace race;
    race.addr = 0x1000;
    race.prior = {0, 1, true, 5, AccessOrigin::kSampled};
    race.current = {1, 2, false, 9, AccessOrigin::kBackward};
    r.add(race);
    const std::string text = r.format();
    EXPECT_NE(text.find("sampled"), std::string::npos);
    EXPECT_NE(text.find("backward-replay"), std::string::npos);
    EXPECT_NE(text.find("write"), std::string::npos);
}

} // namespace
} // namespace prorace::detect

/**
 * @file
 * The v5 columnar trace format: field-exact round trips over random
 * traces, run-block detection and its compression floor, resumable
 * cursor parity at every chunking, corruption behavior of the columnar
 * payloads, the version gate, and — the correctness contract of the
 * whole layer — byte-identical race reports between the compressed
 * path and the in-memory path, with detector-side run folding on and
 * off.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/offline.hh"
#include "core/pipeline.hh"
#include "detect/fasttrack.hh"
#include "detect/incremental.hh"
#include "fault_injection.hh"
#include "oracle/generator.hh"
#include "support/crc32.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"
#include "workload/racybugs.hh"

namespace prorace {
namespace {

using trace::RunTrace;
using vm::SyncKind;

/**
 * A pseudo-random trace that exercises every encoder path: records
 * with locality (sequential same-thread addresses and insns, sparse
 * register churn), records with none (fully random fields), planted
 * strided loop blocks (run-block candidates), plus a random sync
 * stream and PT streams.
 */
RunTrace
randomTrace(uint64_t seed, size_t pebs_records = 900,
            size_t sync_records = 300)
{
    Rng rng(seed);
    RunTrace t;
    t.meta.num_cores = 2;
    t.meta.wall_cycles = rng.next();
    t.meta.total_insns = rng.next();
    t.meta.pebs_period = 1000;
    t.meta.samples_taken = pebs_records;
    t.meta.first_periods = {rng.below(1000), rng.below(1000)};
    for (uint32_t tid = 1; tid <= 3; ++tid)
        t.meta.threads.push_back({tid, static_cast<uint32_t>(
                                           rng.below(5000))});

    uint64_t tsc = 1000;
    std::map<uint32_t, trace::PebsRecord> last_of_tid;
    while (t.pebs.size() < pebs_records) {
        tsc += rng.range(1, 300);
        const uint32_t tid = 1 + static_cast<uint32_t>(rng.below(3));
        trace::PebsRecord rec = last_of_tid.count(tid)
            ? last_of_tid[tid]
            : trace::PebsRecord{};
        rec.tid = tid;
        rec.core = static_cast<uint32_t>(rng.below(2));
        rec.tsc = tsc;
        if (rng.chance(0.3)) {
            // No locality: every field fresh and random.
            rec.insn_index = static_cast<uint32_t>(rng.next());
            rec.addr = rng.next();
            rec.width = static_cast<uint8_t>(1u << rng.below(4));
            rec.is_write = rng.chance(0.5);
            rec.is_atomic = rng.chance(0.1);
            for (uint64_t &g : rec.regs.gpr)
                g = rng.next();
        } else {
            // Locality: the common case the columns are shaped for.
            rec.insn_index += static_cast<uint32_t>(rng.below(12));
            rec.addr += rng.below(64);
            for (size_t i = 0; i < rng.below(3); ++i)
                rec.regs.gpr[rng.below(isa::kNumGprs)] += rng.below(256);
        }
        last_of_tid[rec.tid] = rec;
        t.pebs.push_back(rec);

        if (rng.chance(0.08) && t.pebs.size() + 16 < pebs_records) {
            // Plant a strided loop: a block of 1..3 records repeated
            // with constant addr/tsc strides — what a sampled hot loop
            // looks like, and what the run detector is for.
            const size_t block = 1 + rng.below(3);
            const size_t iters = 2 + rng.below(5);
            std::vector<trace::PebsRecord> body;
            for (size_t b = 0; b < block; ++b) {
                trace::PebsRecord r = rec;
                r.insn_index = static_cast<uint32_t>(100 + b);
                r.addr = 0x7000 + 8 * b;
                r.tsc = tsc + b + 1;
                body.push_back(r);
            }
            for (size_t it = 0; it < iters; ++it) {
                for (size_t b = 0; b < block; ++b) {
                    trace::PebsRecord r = body[b];
                    r.addr += 32 * it;
                    r.tsc += (block + 3) * it;
                    r.regs.gpr[3] += it;
                    t.pebs.push_back(r);
                }
            }
            tsc += (block + 3) * iters + 16;
            last_of_tid[rec.tid] = t.pebs.back();
        }
    }
    t.pebs.resize(pebs_records);

    uint64_t stsc = 500;
    for (size_t i = 0; i < sync_records; ++i) {
        trace::SyncRecord s;
        stsc += rng.range(1, 500);
        s.tid = 1 + static_cast<uint32_t>(rng.below(3));
        s.kind = static_cast<SyncKind>(rng.below(vm::kMaxSyncKind + 1ull));
        s.object = rng.chance(0.7) ? 0x9000 + 16 * rng.below(8)
                                   : rng.next();
        s.aux = rng.below(1u << 20);
        s.tsc = stsc;
        s.insn_index = static_cast<uint32_t>(rng.below(5000));
        t.sync.push_back(s);
    }

    for (uint32_t core = 0; core < 2; ++core) {
        trace::PtCoreStream pt;
        pt.bytes.resize(64 + rng.below(256));
        for (uint8_t &b : pt.bytes)
            b = static_cast<uint8_t>(rng.next());
        pt.bit_count = pt.bytes.size() * 8;
        t.pt.push_back(pt);
    }
    return t;
}

void
expectTracesEqual(const RunTrace &a, const RunTrace &b)
{
    ASSERT_EQ(a.pebs.size(), b.pebs.size());
    for (size_t i = 0; i < a.pebs.size(); ++i) {
        const trace::PebsRecord &x = a.pebs[i];
        const trace::PebsRecord &y = b.pebs[i];
        ASSERT_EQ(x.tid, y.tid) << "pebs " << i;
        ASSERT_EQ(x.core, y.core) << "pebs " << i;
        ASSERT_EQ(x.insn_index, y.insn_index) << "pebs " << i;
        ASSERT_EQ(x.addr, y.addr) << "pebs " << i;
        ASSERT_EQ(x.width, y.width) << "pebs " << i;
        ASSERT_EQ(x.is_write, y.is_write) << "pebs " << i;
        ASSERT_EQ(x.is_atomic, y.is_atomic) << "pebs " << i;
        ASSERT_EQ(x.tsc, y.tsc) << "pebs " << i;
        ASSERT_EQ(x.regs.gpr, y.regs.gpr) << "pebs " << i;
    }
    ASSERT_EQ(a.sync.size(), b.sync.size());
    for (size_t i = 0; i < a.sync.size(); ++i) {
        const trace::SyncRecord &x = a.sync[i];
        const trace::SyncRecord &y = b.sync[i];
        ASSERT_EQ(x.tid, y.tid) << "sync " << i;
        ASSERT_EQ(x.kind, y.kind) << "sync " << i;
        ASSERT_EQ(x.object, y.object) << "sync " << i;
        ASSERT_EQ(x.aux, y.aux) << "sync " << i;
        ASSERT_EQ(x.tsc, y.tsc) << "sync " << i;
        ASSERT_EQ(x.insn_index, y.insn_index) << "sync " << i;
    }
    ASSERT_EQ(a.pt.size(), b.pt.size());
    for (size_t i = 0; i < a.pt.size(); ++i) {
        ASSERT_EQ(a.pt[i].bytes, b.pt[i].bytes) << "pt " << i;
        ASSERT_EQ(a.pt[i].bit_count, b.pt[i].bit_count) << "pt " << i;
    }
}

TEST(TraceFormatV5, RoundTripRandomTracesFieldExact)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        const RunTrace t = randomTrace(seed);
        const std::vector<uint8_t> bytes = trace::serializeTrace(t);
        auto loaded = trace::readTrace(bytes);
        ASSERT_TRUE(loaded.ok()) << "seed " << seed;
        EXPECT_FALSE(loaded.value().loss.hasLoss()) << "seed " << seed;
        expectTracesEqual(t, loaded.value().trace);
        // Deterministic encoder: re-serializing the decoded trace
        // reproduces the file byte for byte (the service relies on
        // this to dedup/re-export ingested traces).
        EXPECT_EQ(trace::serializeTrace(loaded.value().trace), bytes)
            << "seed " << seed;
    }
}

TEST(TraceFormatV5, SampledLoopHitsCompressionFloor)
{
    // A pure sampled loop: one thread hammering a strided buffer at a
    // fixed period — the best case the columns and run blocks are
    // designed around, and the ISSUE floor for it is >= 3x on the PEBS
    // stream.
    RunTrace t;
    t.meta.num_cores = 1;
    t.meta.threads.push_back({1, 0});
    trace::PebsRecord rec;
    rec.tid = 1;
    rec.core = 0;
    rec.insn_index = 4242;
    rec.width = 8;
    rec.is_write = true;
    for (size_t i = 0; i < 2000; ++i) {
        rec.addr = 0x100000 + 8 * i;
        rec.tsc = 1000 + 1000 * i;
        rec.regs.gpr[0] = i;
        rec.regs.gpr[5] = 0x100000 + 8 * i;
        t.pebs.push_back(rec);
    }
    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    auto loaded = trace::readTrace(bytes);
    ASSERT_TRUE(loaded.ok());
    expectTracesEqual(t, loaded.value().trace);

    const trace::CompressionStats &cs =
        loaded.value().trace.meta.compression;
    EXPECT_EQ(cs.pebs_raw_bytes, 2000u * 159u);
    EXPECT_GE(cs.pebsRatio(), 3.0)
        << cs.pebs_raw_bytes << " -> " << cs.pebs_encoded_bytes;
    // The whole stream is one arithmetic sequence: nearly every record
    // must be elided into run blocks.
    EXPECT_GT(cs.run_blocks, 0u);
    EXPECT_GE(cs.run_iterations_folded, t.pebs.size() / 2);
}

TEST(TraceFormatV5, CursorParityAtEveryChunkSize)
{
    const RunTrace t = randomTrace(77);
    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    auto oneshot = trace::readTrace(bytes);
    ASSERT_TRUE(oneshot.ok());

    for (size_t chunk : {size_t(1), size_t(7), size_t(64), size_t(4096),
                         bytes.size()}) {
        trace::TraceReader reader("<chunked>");
        for (size_t off = 0; off < bytes.size(); off += chunk) {
            const size_t len = std::min(chunk, bytes.size() - off);
            reader.feed(bytes.data() + off, len);
            reader.poll();
        }
        auto streamed = reader.finish();
        ASSERT_TRUE(streamed.ok()) << "chunk " << chunk;
        EXPECT_FALSE(streamed.value().loss.hasLoss())
            << "chunk " << chunk;
        expectTracesEqual(oneshot.value().trace,
                          streamed.value().trace);
        EXPECT_EQ(trace::serializeTrace(streamed.value().trace), bytes)
            << "chunk " << chunk;
    }
}

TEST(TraceFormatV5, VersionErrorNamesBothVersions)
{
    std::vector<uint8_t> bytes =
        trace::serializeTrace(randomTrace(5, 50, 20));
    bytes[4] = 4; // a v4 producer's file
    auto loaded = trace::readTrace(bytes);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().kind, trace::TraceErrorKind::kBadVersion);
    const std::string msg = loaded.error().format();
    EXPECT_NE(msg.find("version 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("version 5"), std::string::npos) << msg;
}

TEST(TraceFormatV5, ColumnarPayloadCorruptionDropsWholeSegments)
{
    const RunTrace t = randomTrace(9, 1200, 600);
    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    const auto spans = fault::mapSegments(bytes);

    // Flip one payload byte in every pebs/sync segment in turn: each
    // must surface as that segment's records dropped, never a crash or
    // a misdecoded record sneaking through (the CRC gates the columns).
    for (const fault::SegmentSpan &s : spans) {
        if (s.kind != 2 && s.kind != 3)
            continue;
        std::vector<uint8_t> damaged = bytes;
        const size_t mid = s.begin + 25 + (s.end - s.begin - 25) / 2;
        damaged[mid] ^= 0x40;
        auto loaded = trace::readTrace(damaged);
        ASSERT_TRUE(loaded.ok());
        const trace::SegmentLoss &loss = loaded.value().loss;
        EXPECT_EQ(loss.segments_dropped, 1u);
        if (s.kind == 2) {
            EXPECT_GT(loss.pebs_dropped, 0u);
            EXPECT_LE(loss.pebs_dropped, trace::kPebsChunkRecords);
        } else {
            EXPECT_GT(loss.sync_dropped, 0u);
            EXPECT_LE(loss.sync_dropped, trace::kSyncChunkRecords);
        }
    }
}

TEST(TraceFormatV5, SalvageRecallFloorUnderSparseCorruption)
{
    // ISSUE floor: at <= 1% corruption the reader must still salvage
    // >= 90% of the records. Damage ~1% of the segments (at least one)
    // across several seeds and check the recall of what survives.
    const RunTrace t = randomTrace(11, 4000, 2000);
    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    const auto spans = fault::mapSegments(bytes);
    const size_t hit = std::max<size_t>(1, spans.size() / 100);

    for (uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng(seed);
        std::vector<uint8_t> damaged = bytes;
        for (size_t k = 0; k < hit; ++k) {
            const fault::SegmentSpan &s =
                spans[rng.below(spans.size())];
            damaged[s.begin + 25 +
                    rng.below(std::max<size_t>(1,
                                               s.end - s.begin - 25))] ^=
                static_cast<uint8_t>(1u << rng.below(8));
        }
        auto loaded = trace::readTrace(damaged);
        if (!loaded.ok())
            continue; // hit the meta segment: clean reject is fine
        const RunTrace &got = loaded.value().trace;
        EXPECT_GE(got.pebs.size(), t.pebs.size() * 9 / 10)
            << "seed " << seed;
        EXPECT_GE(got.sync.size(), t.sync.size() * 9 / 10)
            << "seed " << seed;
    }
}

TEST(TraceFormatV5, RandomBitFlipSweepNeverCrashes)
{
    const RunTrace t = randomTrace(13, 600, 300);
    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    for (uint64_t seed = 1; seed <= 30; ++seed) {
        for (size_t flips : {1u, 8u, 64u}) {
            std::vector<uint8_t> damaged = bytes;
            Rng rng(seed * 100 + flips);
            fault::flipRandomBits(damaged, flips, rng);
            auto loaded = trace::readTrace(damaged);
            if (loaded.ok()) {
                // Whatever survived must re-serialize cleanly.
                trace::serializeTrace(loaded.value().trace);
            }
        }
    }
}

// --- sync vocabulary: kind-exhaustive coverage --------------------

TEST(TraceFormatV5, SyncKindVocabularyRoundTripsExhaustively)
{
    // Every SyncKind — including the rwlock/semaphore/spinlock/atomic
    // additions — must survive the sync columns byte for byte. The
    // guard below fails when a kind is added without extending this
    // coverage.
    ASSERT_EQ(vm::kMaxSyncKind,
              static_cast<uint8_t>(SyncKind::kAtomicAcqRel))
        << "new SyncKind added: extend the vocabulary tests";

    std::set<std::string> names;
    for (unsigned k = 0; k <= vm::kMaxSyncKind; ++k) {
        const char *name = vm::syncKindName(static_cast<SyncKind>(k));
        ASSERT_NE(name, nullptr) << "kind " << k;
        ASSERT_TRUE(names.insert(name).second)
            << "duplicate name for kind " << k << ": " << name;
    }

    RunTrace t;
    t.meta.num_cores = 1;
    for (uint32_t tid = 1; tid <= 3; ++tid)
        t.meta.threads.push_back({tid, 0});
    uint64_t tsc = 100;
    for (unsigned round = 0; round < 4; ++round) {
        for (unsigned k = 0; k <= vm::kMaxSyncKind; ++k) {
            trace::SyncRecord s;
            s.tid = 1 + (round + k) % 3;
            s.kind = static_cast<SyncKind>(k);
            s.object = 0x9000 + 16 * k;
            s.aux = k * 7 + round;
            s.tsc = tsc += 3 + k;
            s.insn_index = 40 + k;
            t.sync.push_back(s);
        }
    }

    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    auto loaded = trace::readTrace(bytes);
    ASSERT_TRUE(loaded.ok());
    EXPECT_FALSE(loaded.value().loss.hasLoss());
    expectTracesEqual(t, loaded.value().trace);
    EXPECT_EQ(trace::serializeTrace(loaded.value().trace), bytes);
}

/** LEB128 decode starting at @p pos; advances @p pos. */
uint64_t
varintAt(const std::vector<uint8_t> &bytes, size_t &pos)
{
    uint64_t v = 0;
    unsigned shift = 0;
    while (true) {
        const uint8_t b = bytes.at(pos++);
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
}

/**
 * Offset of the first byte of the kind column inside the sync segment
 * at @p span, and the record count, parsed from the payload framing
 * (first-index u64, count varint, then per-column length-prefixed
 * blocks; the kind column is column 1).
 */
std::pair<size_t, uint64_t>
syncKindColumn(const std::vector<uint8_t> &bytes,
               const fault::SegmentSpan &span)
{
    size_t pos = span.begin + 25 + 8; // header + first-record index
    const uint64_t count = varintAt(bytes, pos);
    const uint64_t tid_len = varintAt(bytes, pos);
    pos += static_cast<size_t>(tid_len);
    const uint64_t kind_len = varintAt(bytes, pos);
    PRORACE_ASSERT(kind_len == count, "kind column is one u8 per record");
    return {pos, count};
}

/** Recompute the payload CRC of the segment at @p span in place. */
void
fixPayloadCrc(std::vector<uint8_t> &bytes, const fault::SegmentSpan &span)
{
    const uint32_t crc = crc32(bytes.data() + span.begin + 25,
                               span.end - span.begin - 25);
    for (int i = 0; i < 4; ++i)
        bytes[span.begin + 21 + i] =
            static_cast<uint8_t>(crc >> (8 * i));
}

TEST(TraceFormatV5, OutOfRangeKindByteDropsTheSegmentCleanly)
{
    // A kind byte above kMaxSyncKind with a *valid* CRC (a producer
    // from the future, or memory corruption before checksumming) must
    // drop the segment through salvage — never dispatch as garbage.
    const RunTrace t = randomTrace(21, 60, 200);
    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    const auto spans = fault::mapSegments(bytes);
    const fault::SegmentSpan *sync_span = nullptr;
    for (const fault::SegmentSpan &s : spans)
        if (s.kind == 3) {
            sync_span = &s;
            break;
        }
    ASSERT_NE(sync_span, nullptr);
    const auto [kind_pos, count] = syncKindColumn(bytes, *sync_span);

    // Control: rewriting the first kind byte to a different *valid*
    // kind with the CRC fixed up decodes cleanly — proving the CRC
    // patch works and the later drop is the range check's doing.
    std::vector<uint8_t> retagged = bytes;
    retagged[kind_pos] =
        retagged[kind_pos] == 0 ? 1 : 0;
    fixPayloadCrc(retagged, *sync_span);
    auto control = trace::readTrace(retagged);
    ASSERT_TRUE(control.ok());
    EXPECT_FALSE(control.value().loss.hasLoss());
    EXPECT_EQ(static_cast<uint8_t>(control.value().trace.sync[0].kind),
              retagged[kind_pos]);

    for (const uint8_t bad : {
             static_cast<uint8_t>(vm::kMaxSyncKind + 1),
             static_cast<uint8_t>(0xE7),
             static_cast<uint8_t>(0xFF),
         }) {
        std::vector<uint8_t> damaged = bytes;
        damaged[kind_pos + count / 2] = bad;
        fixPayloadCrc(damaged, *sync_span);
        auto loaded = trace::readTrace(damaged);
        ASSERT_TRUE(loaded.ok()) << unsigned(bad);
        const trace::SegmentLoss &loss = loaded.value().loss;
        EXPECT_EQ(loss.segments_dropped, 1u) << unsigned(bad);
        EXPECT_EQ(loss.sync_dropped, count) << unsigned(bad);
        for (const trace::SyncRecord &s : loaded.value().trace.sync)
            ASSERT_LE(static_cast<uint8_t>(s.kind), vm::kMaxSyncKind);
    }
}

TEST(TraceFormatV5, SyncLossDisablesEpochGcForEveryKind)
{
    // The GC soundness argument needs the full sync stream; once any
    // sync segment is lost — whatever kinds it held — the streaming
    // analyzer must fall back to an unswept table.
    oracle::GeneratorConfig cfg;
    cfg.seed = 23;
    cfg.threads = 4;
    cfg.items = 60;
    cfg.racy_sites = 1;
    cfg.rw_locked_sites = 1;
    cfg.sem_signal_sites = 1;
    cfg.spin_locked_sites = 1;
    cfg.relacq_sites = 1;
    const oracle::GeneratedWorkload gw = oracle::generate(cfg);
    core::PipelineConfig pc =
        core::proRaceConfig(400, 8, gw.workload.pt_filter);
    pc.offline.incremental.enabled = true;
    pc.offline.incremental.batch_events = 256;
    pc.offline.incremental.gc_min_events = 64;
    core::RunArtifacts run = core::Session::run(
        *gw.workload.program, gw.workload.setup, pc.session);
    const std::vector<uint8_t> bytes = trace::serializeTrace(run.trace);

    const std::string path = "/tmp/prorace_sync_loss_gc.trace";
    const auto write_file = [&](const std::vector<uint8_t> &data) {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f),
                  data.size());
        std::fclose(f);
    };

    core::OfflineAnalyzer analyzer(*gw.workload.program, pc.offline);
    write_file(bytes);
    auto clean = analyzer.analyzeFile(path);
    ASSERT_TRUE(clean.ok());
    ASSERT_FALSE(clean.value().ingest_loss.hasLoss());
    // The clean run must actually sweep, or disabling GC proves nothing.
    ASSERT_GT(clean.value().incremental.gc_sweeps, 0u);

    std::vector<uint8_t> damaged = bytes;
    bool hit = false;
    for (const fault::SegmentSpan &s : fault::mapSegments(bytes)) {
        if (s.kind != 3)
            continue;
        damaged[s.begin + 25 + (s.end - s.begin - 25) / 2] ^= 0x10;
        hit = true;
        break;
    }
    ASSERT_TRUE(hit);
    write_file(damaged);
    auto lossy = analyzer.analyzeFile(path);
    std::remove(path.c_str());
    ASSERT_TRUE(lossy.ok());
    EXPECT_GT(lossy.value().ingest_loss.sync_dropped, 0u);
    EXPECT_EQ(lossy.value().incremental.gc_sweeps, 0u);
    EXPECT_GT(lossy.value().incremental.batches, 0u)
        << "batching must stay on; only the sweeps stop";
}

// --- detector-side run folding ------------------------------------

/**
 * A deterministic hand-built detection input: two threads, a hot
 * write loop (foldable), a shared-read loop (must fall back), and one
 * real race. Returns the sync-only RunTrace and the access list.
 */
void
buildFoldScenario(RunTrace &run,
                  std::vector<replay::ReconstructedAccess> &accesses)
{
    run.meta.threads.push_back({1, 0});
    run.meta.threads.push_back({2, 0});

    auto sync = [&](uint32_t tid, SyncKind kind, uint64_t object,
                    uint64_t aux, uint64_t tsc) {
        trace::SyncRecord s;
        s.tid = tid;
        s.kind = kind;
        s.object = object;
        s.aux = aux;
        s.tsc = tsc;
        run.sync.push_back(s);
    };
    auto access = [&](uint32_t tid, uint64_t addr, bool is_write,
                      uint64_t tsc, uint32_t insn) {
        replay::ReconstructedAccess a;
        a.tid = tid;
        a.insn_index = insn;
        a.addr = addr;
        a.width = 8;
        a.is_write = is_write;
        a.tsc = tsc;
        a.position = tsc;
        a.origin = detect::AccessOrigin::kSampled;
        accesses.push_back(a);
    };

    sync(1, SyncKind::kSpawn, 0, 2, 10);
    // Foldable run: thread 1 writes the same granule 12 times with no
    // intervening event — iterations 2..12 are provably absorbed.
    for (uint64_t i = 0; i < 12; ++i)
        access(1, 0x1000, true, 100 + i, 7);
    // Shared-read run: both threads read the granule (read-share
    // inflation), then thread 2 re-reads it 6 times. The detector must
    // decline to fold those (the shared-read sample timestamps matter)
    // and the fallback dispatches them one by one.
    access(1, 0x2000, false, 200, 8);
    access(2, 0x2000, false, 210, 9);
    for (uint64_t i = 0; i < 6; ++i)
        access(2, 0x2000, false, 220 + i, 9);
    // One real race so the identity check compares nonempty reports.
    access(1, 0x3000, true, 300, 10);
    access(2, 0x3000, true, 310, 11);
}

TEST(RunSummary, FoldsProvenRunsAndKeepsReportsIdentical)
{
    RunTrace run;
    std::vector<replay::ReconstructedAccess> accesses;
    buildFoldScenario(run, accesses);
    const std::map<uint32_t, replay::ThreadAlignment> alignments;

    detect::RaceReport folded, unfolded;
    detect::FastTrackStats fs, us;
    core::detail::detectRaces(run, alignments, accesses, folded, fs,
                              /*run_summary=*/true);
    core::detail::detectRaces(run, alignments, accesses, unfolded, us,
                              /*run_summary=*/false);

    EXPECT_FALSE(folded.empty());
    EXPECT_EQ(folded.format(), unfolded.format());

    // The write loop folds (11 repeats in one block); the shared-read
    // loop must NOT fold (absorbing it would drop the later readers'
    // timestamps from the shadow state).
    EXPECT_EQ(fs.run_blocks_folded, 1u);
    EXPECT_EQ(fs.run_iterations_folded, 11u);
    EXPECT_EQ(us.run_blocks_folded, 0u);
    EXPECT_EQ(us.run_iterations_folded, 0u);

    // Folding mirrors the unfolded accounting exactly: every other
    // counter pair matches, so --stats output is mode-independent too.
    EXPECT_EQ(fs.reads, us.reads);
    EXPECT_EQ(fs.writes, us.writes);
    EXPECT_EQ(fs.epoch_fast_path, us.epoch_fast_path);
    EXPECT_EQ(fs.read_shares, us.read_shares);
    EXPECT_EQ(fs.sync_ops, us.sync_ops);
}

TEST(RunSummary, IncrementalDetectorFoldsAndMatchesOneShot)
{
    RunTrace run;
    std::vector<replay::ReconstructedAccess> accesses;
    buildFoldScenario(run, accesses);
    const std::map<uint32_t, replay::ThreadAlignment> alignments;

    detect::RaceReport oneshot;
    detect::FastTrackStats os;
    core::detail::detectRaces(run, alignments, accesses, oneshot, os,
                              true);

    uint64_t events[2] = {0, 0};
    for (const bool summary : {true, false}) {
        detect::IncrementalOptions opts;
        opts.enabled = true;
        opts.batch_events = 4; // force many batch boundaries mid-run
        detect::IncrementalFastTrack inc(opts);
        for (const trace::ThreadMeta &tm : run.meta.threads)
            inc.requireThread(tm.tid);
        core::detail::detectRacesIncremental(run, alignments, accesses,
                                             inc, summary);
        EXPECT_EQ(inc.report().format(), oneshot.format())
            << "summary " << summary;
        events[summary] = inc.incrementalStats().events;
        EXPECT_EQ(inc.stats().run_iterations_folded,
                  summary ? 11u : 0u);
    }
    // Folded iterations count toward batch pacing exactly as if they
    // had been dispatched: the event totals agree between the modes.
    EXPECT_EQ(events[0], events[1]);
    EXPECT_GE(events[0], accesses.size() + run.sync.size());
}

// --- end-to-end report identity over the compressed format --------

/** Analyze a RunTrace directly with the given run_summary setting. */
std::string
reportOf(const workload::Workload &w, const core::OfflineOptions &base,
         const RunTrace &run, bool run_summary)
{
    core::OfflineOptions opt = base;
    opt.run_summary = run_summary;
    core::OfflineAnalyzer analyzer(*w.program, opt);
    return analyzer.analyze(run).report.format(w.program.get());
}

TEST(TraceFormatV5, ReportIdentityOnRegistrySubjects)
{
    // The tentpole gate: for real traced subjects, analysis of the
    // decoded v5 stream equals analysis of the in-memory trace, with
    // run folding on and off, byte for byte.
    for (const char *id : {"pfscan", "apache-25520"}) {
        const workload::Workload w = workload::makeRacyBug(id, 0.5);
        core::PipelineConfig cfg =
            core::proRaceConfig(800, 3, w.pt_filter);
        core::RunArtifacts run =
            core::Session::run(*w.program, w.setup, cfg.session);

        auto loaded =
            trace::readTrace(trace::serializeTrace(run.trace));
        ASSERT_TRUE(loaded.ok()) << id;
        ASSERT_FALSE(loaded.value().loss.hasLoss()) << id;

        const std::string baseline =
            reportOf(w, cfg.offline, run.trace, false);
        EXPECT_EQ(reportOf(w, cfg.offline, run.trace, true), baseline)
            << id;
        EXPECT_EQ(reportOf(w, cfg.offline, loaded.value().trace, true),
                  baseline)
            << id;
        EXPECT_EQ(reportOf(w, cfg.offline, loaded.value().trace, false),
                  baseline)
            << id;
    }
}

TEST(TraceFormatV5, ReportIdentityOnOracleBattery)
{
    // Same gate over planted-race workloads with exact ground truth:
    // the compressed path must not add or lose a single race.
    for (const oracle::GeneratorConfig &cfg :
         oracle::standardBattery(/*seed=*/5, /*count=*/2)) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc = core::proRaceConfig(
            500, 12, gw.workload.pt_filter);
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);

        auto loaded =
            trace::readTrace(trace::serializeTrace(run.trace));
        ASSERT_TRUE(loaded.ok()) << gw.workload.name;
        ASSERT_FALSE(loaded.value().loss.hasLoss()) << gw.workload.name;

        const std::string baseline =
            reportOf(gw.workload, pc.offline, run.trace, false);
        EXPECT_EQ(reportOf(gw.workload, pc.offline, run.trace, true),
                  baseline)
            << gw.workload.name;
        EXPECT_EQ(reportOf(gw.workload, pc.offline,
                           loaded.value().trace, true),
                  baseline)
            << gw.workload.name;
        EXPECT_EQ(reportOf(gw.workload, pc.offline,
                           loaded.value().trace, false),
                  baseline)
            << gw.workload.name;
    }
}

} // namespace
} // namespace prorace

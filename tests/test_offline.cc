/**
 * @file
 * Tests for the offline pipeline's glue: program map, feed ordering,
 * racy-location regeneration, and the end-to-end condvar/barrier HB
 * edges through reconstruction.
 */

#include <gtest/gtest.h>

#include "asmkit/builder.hh"
#include "core/pipeline.hh"
#include "replay/program_map.hh"

namespace prorace {
namespace {

using asmkit::Program;
using asmkit::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::Reg;

TEST(ProgramMap, RegisterAvailabilityLifecycle)
{
    replay::ProgramMap pm;
    EXPECT_FALSE(pm.regAvailable(Reg::rax));
    EXPECT_EQ(pm.availableRegCount(), 0u);

    pm.setReg(Reg::rax, 42);
    EXPECT_TRUE(pm.regAvailable(Reg::rax));
    EXPECT_EQ(pm.regValue(Reg::rax), 42u);
    EXPECT_EQ(pm.availableRegCount(), 1u);

    pm.invalidateReg(Reg::rax);
    EXPECT_FALSE(pm.regAvailable(Reg::rax));

    vm::RegFile regs;
    regs.set(Reg::rbx, 7);
    pm.restoreRegs(regs);
    EXPECT_EQ(pm.availableRegCount(), isa::kNumGprs);
    EXPECT_EQ(pm.regValue(Reg::rbx), 7u);

    pm.invalidateAllRegs();
    EXPECT_EQ(pm.availableRegCount(), 0u);
}

TEST(ProgramMap, MemoryEmulationByteGranular)
{
    replay::ProgramMap pm;
    EXPECT_FALSE(pm.readMem(0x1000, 8).has_value());

    pm.writeMem(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(pm.readMem(0x1000, 8).value(), 0x1122334455667788ull);
    EXPECT_EQ(pm.readMem(0x1002, 2).value(), 0x5566ull);

    // Partially invalidated range: reads touching it fail.
    pm.invalidateMem(0x1003, 1);
    EXPECT_FALSE(pm.readMem(0x1000, 8).has_value());
    EXPECT_TRUE(pm.readMem(0x1000, 2).has_value());

    pm.invalidateMemory();
    EXPECT_FALSE(pm.readMem(0x1000, 2).has_value());
}

TEST(ProgramMap, ConsumedAddressesAreTracked)
{
    replay::ProgramMap pm;
    pm.writeMem(0x2000, 9, 8);
    EXPECT_TRUE(pm.consumedAddresses().empty());
    (void)pm.readMem(0x2000, 4);
    EXPECT_EQ(pm.consumedAddresses().size(), 4u);
    EXPECT_TRUE(pm.consumedAddresses().count(0x2003));
    EXPECT_FALSE(pm.consumedAddresses().count(0x2004));
}

TEST(ProgramMap, BlacklistBlocksEmulation)
{
    replay::ProgramMap pm;
    pm.blacklistMem(0x3000, 8);
    pm.writeMem(0x3000, 1, 8);
    EXPECT_FALSE(pm.readMem(0x3000, 8).has_value());
    // Neighbours unaffected.
    pm.writeMem(0x3008, 2, 8);
    EXPECT_TRUE(pm.readMem(0x3008, 8).has_value());
}

/** A producer/consumer program with condvar handoff and no races. */
Program
condvarProgram()
{
    ProgramBuilder b;
    b.globalU64("cell", 0);
    b.globalU64("ready", 0);
    b.globalU64("out", 0);
    b.global("mtx", 8);
    b.global("cv", 8);
    b.label("main");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "consumer", Reg::r12);
    b.movri(Reg::rcx, 0);
    b.label("produce");
    b.lock(b.symRef("mtx"));
    b.load(Reg::rax, b.symRef("cell"));
    b.addri(Reg::rax, 5);
    b.store(b.symRef("cell"), Reg::rax);
    b.movri(Reg::rax, 1);
    b.store(b.symRef("ready"), Reg::rax);
    b.condSignal(b.symRef("cv"));
    b.unlock(b.symRef("mtx"));
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 40);
    b.jcc(CondCode::kLt, "produce");
    b.join(Reg::r8);
    b.halt();
    b.beginFunction("consumer");
    b.movri(Reg::rbx, 0);
    b.label("consume");
    b.lock(b.symRef("mtx"));
    b.label("wait_loop");
    b.load(Reg::rax, b.symRef("ready"));
    b.cmpri(Reg::rax, 1);
    b.jcc(CondCode::kEq, "got");
    b.lea(Reg::r13, b.symRef("mtx"));
    b.condWait(b.symRef("cv"), Reg::r13);
    b.jmp("wait_loop");
    b.label("got");
    b.load(Reg::rax, b.symRef("cell"));
    b.store(b.symRef("out"), Reg::rax);
    b.movri(Reg::rax, 0);
    b.store(b.symRef("ready"), Reg::rax);
    b.unlock(b.symRef("mtx"));
    b.addri(Reg::rbx, 1);
    b.cmpri(Reg::rbx, 40);
    b.jcc(CondCode::kLt, "consume");
    b.halt();
    return b.build();
}

TEST(Offline, CondvarHandoffIsRaceFreeThroughThePipeline)
{
    Program p = condvarProgram();
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        auto cfg = core::proRaceConfig(50, seed);
        auto result = core::runPipeline(
            p, [](vm::Machine &m) { m.addThread("main"); }, cfg);
        EXPECT_TRUE(result.offline.report.empty())
            << "seed " << seed << "\n"
            << result.offline.report.format(&p);
    }
}

TEST(Offline, HeapRaceSurvivesRegenerationRounds)
{
    // A race on a heap object whose pointer the replay *can* emulate
    // (stored then reloaded in the same window): the §5.1 regeneration
    // loop must not erase the genuine race.
    ProgramBuilder b;
    b.globalU64("obj_ptr", 0);
    b.label("main");
    b.movri(Reg::rsi, 64);
    b.mallocCall(Reg::rax, Reg::rsi);
    b.store(b.symRef("obj_ptr"), Reg::rax);
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "worker", Reg::r12);
    b.spawn(Reg::r9, "worker", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.halt();
    b.beginFunction("worker");
    b.movri(Reg::rcx, 0);
    b.label("loop");
    b.load(Reg::rsi, b.symRef("obj_ptr"));
    b.load(Reg::rax, isa::MemOperand::baseDisp(Reg::rsi, 8));
    b.addri(Reg::rax, 1);
    b.store(isa::MemOperand::baseDisp(Reg::rsi, 8), Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 400);
    b.jcc(CondCode::kLt, "loop");
    b.halt();
    Program p = b.build();

    int detected = 0;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        auto cfg = core::proRaceConfig(25, seed);
        auto result = core::runPipeline(
            p, [](vm::Machine &m) { m.addThread("main"); }, cfg);
        detected += !result.offline.report.empty();
    }
    EXPECT_GE(detected, 3);
}

TEST(Offline, BasicBlockModeSkipsPtDecode)
{
    Program p = condvarProgram();
    core::SessionOptions sopt;
    sopt.machine.seed = 2;
    sopt.run_baseline = false;
    sopt.tracing.pebs_period = 40;
    auto run = core::Session::run(
        p, [](vm::Machine &m) { m.addThread("main"); }, sopt);

    core::OfflineOptions oopt;
    oopt.replay.mode = replay::ReplayMode::kBasicBlock;
    core::OfflineAnalyzer analyzer(p, oopt);
    auto result = analyzer.analyze(run.trace);
    EXPECT_EQ(result.decode_stats.packets, 0u);
    EXPECT_EQ(result.decode_seconds, 0.0);
    EXPECT_GT(result.extended_trace_events, 0u);
}

TEST(Offline, RecoveryRatioIsOneWithPebsOnly)
{
    // Without PT there are no paths: the extended trace is exactly the
    // samples (the degenerate configuration RaceZ improves on).
    Program p = condvarProgram();
    core::SessionOptions sopt;
    sopt.machine.seed = 2;
    sopt.run_baseline = false;
    sopt.tracing.pebs_period = 40;
    sopt.tracing.enable_pt = false;
    auto run = core::Session::run(
        p, [](vm::Machine &m) { m.addThread("main"); }, sopt);
    core::OfflineAnalyzer analyzer(p, {});
    auto result = analyzer.analyze(run.trace);
    EXPECT_DOUBLE_EQ(result.replay_stats.recoveryRatio(), 1.0);
    EXPECT_EQ(result.extended_trace_events,
              run.trace.pebs.size());
}

} // namespace
} // namespace prorace

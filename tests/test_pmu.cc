/**
 * @file
 * Tests for the PMU models: PT packet codec, filters, PEBS counter, and
 * the end-to-end encode/decode fidelity of control-flow tracing.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "pmu/pebs.hh"
#include "pmu/pt.hh"
#include "pmu/pt_decode.hh"
#include "pmu/pt_packet.hh"
#include "testutil.hh"

namespace prorace::pmu {
namespace {

using testutil::makeBranchyProgram;
using testutil::oraclePaths;

TEST(PtPacket, RoundTripAllKinds)
{
    BitWriter w;
    writePtPacket(w, {.kind = PtPacketKind::kTnt, .taken = true});
    writePtPacket(w, {.kind = PtPacketKind::kTnt, .taken = false});
    writePtPacket(w, {.kind = PtPacketKind::kTip, .target = 0xdeadbeef});
    writePtPacket(w, {.kind = PtPacketKind::kPge, .target = 1234});
    writePtPacket(w, {.kind = PtPacketKind::kContext, .tid = 7,
                      .tsc = 0x123456789abcull});
    writePtPacket(w, {.kind = PtPacketKind::kTsc, .tsc = 42});
    writePtPacket(w, {.kind = PtPacketKind::kEnd});

    BitReader r(w.bytes(), w.bitCount());
    PtPacket p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kTnt);
    EXPECT_TRUE(p.taken);
    p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kTnt);
    EXPECT_FALSE(p.taken);
    p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kTip);
    EXPECT_EQ(p.target, 0xdeadbeefu);
    p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kPge);
    EXPECT_EQ(p.target, 1234u);
    p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kContext);
    EXPECT_EQ(p.tid, 7u);
    EXPECT_EQ(p.tsc, 0x123456789abcull);
    p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kTsc);
    EXPECT_EQ(p.tsc, 42u);
    p = readPtPacket(r);
    EXPECT_EQ(p.kind, PtPacketKind::kEnd);
}

TEST(PtPacket, TntCostsTwoBits)
{
    BitWriter w;
    writePtPacket(w, {.kind = PtPacketKind::kTnt, .taken = true});
    EXPECT_EQ(w.bitCount(), 2u);
}

TEST(PtFilter, RangesAndAll)
{
    PtFilter f;
    f.addRange(10, 20);
    f.addRange(30, 40);
    EXPECT_TRUE(f.contains(10));
    EXPECT_TRUE(f.contains(19));
    EXPECT_FALSE(f.contains(20));
    EXPECT_FALSE(f.contains(25));
    EXPECT_TRUE(f.contains(39));
    EXPECT_TRUE(PtFilter::all().contains(123456));
    EXPECT_FALSE(PtFilter().contains(0));
}

TEST(PtFilter, HardwareLimitsFourRanges)
{
    PtFilter f;
    f.addRange(0, 1);
    f.addRange(1, 2);
    f.addRange(2, 3);
    f.addRange(3, 4);
    EXPECT_THROW(f.addRange(4, 5), std::runtime_error);
}

TEST(PebsCounter, FiresEveryKthEvent)
{
    Rng rng(1);
    PebsCounter c(5, false, rng);
    int fires = 0;
    for (int i = 1; i <= 50; ++i) {
        if (c.tick()) {
            ++fires;
            EXPECT_EQ(i % 5, 0) << "fired off-period at event " << i;
        }
    }
    EXPECT_EQ(fires, 10);
}

TEST(PebsCounter, RandomizedFirstWindowVariesBySeed)
{
    auto first_fire = [](uint64_t seed) {
        Rng rng(seed);
        PebsCounter c(1000, true, rng);
        for (int i = 1;; ++i) {
            if (c.tick())
                return i;
        }
    };
    const int a = first_fire(1);
    const int b = first_fire(2);
    const int c = first_fire(3);
    EXPECT_TRUE(a != b || b != c) << "first windows should differ";
    EXPECT_LE(a, 1000);
    // After the first fire the period must be exactly k.
    Rng rng(1);
    PebsCounter counter(100, true, rng);
    int last = 0, i = 0;
    std::vector<int> gaps;
    for (i = 1; gaps.size() < 5; ++i) {
        if (counter.tick()) {
            if (last)
                gaps.push_back(i - last);
            last = i;
        }
    }
    for (int g : gaps)
        EXPECT_EQ(g, 100);
}

/** Run the branchy program traced and return artifacts + oracle paths. */
struct DecodeFixture {
    asmkit::Program program = makeBranchyProgram();
    core::RunArtifacts artifacts;
    std::map<uint32_t, std::vector<uint32_t>> oracle;

    explicit
    DecodeFixture(const PtFilter &filter = PtFilter::all(),
                  uint64_t seed = 3)
    {
        core::SessionOptions opt;
        opt.machine.seed = seed;
        opt.machine.record_path_log = true;
        opt.run_baseline = false;
        opt.tracing.enable_pebs = false;
        opt.tracing.pt.filter = filter;

        // Session runs its own machine; to get the oracle we run the
        // identical machine configuration with the same observer attached.
        vm::Machine machine(program, opt.machine);
        driver::TracingSession tracing(opt.tracing, opt.machine.num_cores);
        machine.setObserver(&tracing);
        machine.addThread("main");
        machine.run();
        artifacts.trace = tracing.finish();
        artifacts.trace.meta.wall_cycles = machine.wallTime();
        for (uint32_t tid = 0; tid < machine.numThreads(); ++tid) {
            artifacts.trace.meta.threads.push_back(
                {tid, machine.thread(tid).entry_ip});
        }
        oracle = oraclePaths(machine);
    }
};

TEST(PtDecode, ReconstructsExactPathsUnfiltered)
{
    DecodeFixture fx;
    PtDecodeStats stats;
    auto paths = decodePt(fx.program, PtFilter::all(), fx.artifacts.trace,
                          &stats);

    ASSERT_EQ(paths.size(), fx.oracle.size());
    for (const auto &[tid, oracle_path] : fx.oracle) {
        ASSERT_TRUE(paths.count(tid)) << "missing path for tid " << tid;
        const auto &decoded = paths.at(tid).insns;
        EXPECT_EQ(decoded, oracle_path) << "path mismatch for tid " << tid;
        EXPECT_TRUE(paths.at(tid).complete);
    }
    EXPECT_GT(stats.packets, 0u);
}

TEST(PtDecode, ExactAcrossSeeds)
{
    for (uint64_t seed = 10; seed < 18; ++seed) {
        DecodeFixture fx(PtFilter::all(), seed);
        auto paths = decodePt(fx.program, PtFilter::all(),
                              fx.artifacts.trace);
        for (const auto &[tid, oracle_path] : fx.oracle) {
            EXPECT_EQ(paths.at(tid).insns, oracle_path)
                << "seed " << seed << " tid " << tid;
        }
    }
}

TEST(PtDecode, AnchorsAreMonotonic)
{
    DecodeFixture fx;
    auto paths = decodePt(fx.program, PtFilter::all(), fx.artifacts.trace);
    for (const auto &[tid, path] : paths) {
        uint64_t last_pos = 0;
        for (const PathAnchor &a : path.anchors) {
            EXPECT_GE(a.position, last_pos) << "tid " << tid;
            last_pos = a.position;
            EXPECT_LE(a.position, path.insns.size());
        }
        EXPECT_GE(path.anchors.size(), 1u) << "tid " << tid;
    }
}

TEST(PtDecode, FilteredLibraryBecomesGap)
{
    // Filter out the "helper" function; its body must disappear from
    // decoded paths, replaced by gap markers, while everything else
    // still matches the oracle.
    asmkit::Program program = makeBranchyProgram();
    const asmkit::Function *helper = nullptr;
    for (const auto &fn : program.functions()) {
        if (fn.name == "helper")
            helper = &fn;
    }
    ASSERT_NE(helper, nullptr);

    PtFilter filter;
    filter.addRange(0, helper->begin);
    filter.addRange(helper->end, program.size());

    core::SessionOptions opt;
    opt.machine.seed = 3;
    opt.machine.record_path_log = true;
    opt.tracing.enable_pebs = false;
    opt.tracing.pt.filter = filter;

    vm::Machine machine(program, opt.machine);
    driver::TracingSession tracing(opt.tracing, opt.machine.num_cores);
    machine.setObserver(&tracing);
    machine.addThread("main");
    machine.run();
    trace::RunTrace trace = tracing.finish();
    for (uint32_t tid = 0; tid < machine.numThreads(); ++tid)
        trace.meta.threads.push_back({tid, machine.thread(tid).entry_ip});

    auto paths = decodePt(program, filter, trace);
    auto oracle = oraclePaths(machine);

    for (const auto &[tid, oracle_path] : oracle) {
        // Collapse the oracle's helper-body instructions into gaps.
        std::vector<uint32_t> expected;
        bool in_gap = false;
        for (uint32_t idx : oracle_path) {
            const bool inside = idx >= helper->begin && idx < helper->end;
            if (inside) {
                if (!in_gap) {
                    expected.push_back(kPathGap);
                    in_gap = true;
                }
            } else {
                expected.push_back(idx);
                in_gap = false;
            }
        }
        EXPECT_EQ(paths.at(tid).insns, expected) << "tid " << tid;
    }
}

TEST(PtDecode, TraceSizeScalesWithBranchCount)
{
    DecodeFixture small_fx(PtFilter::all(), 3);
    asmkit::Program big = makeBranchyProgram(400);
    core::SessionOptions opt;
    opt.machine.seed = 3;
    opt.tracing.enable_pebs = false;
    core::RunArtifacts big_run = core::Session::run(
        big, [](vm::Machine &m) { m.addThread("main"); }, opt);
    EXPECT_GT(big_run.trace.meta.pt_bytes,
              small_fx.artifacts.trace.meta.pt_bytes);
    // PT stays compact: well under 2 bytes per retired branch.
    EXPECT_LT(static_cast<double>(big_run.trace.meta.pt_bytes),
              2.0 * static_cast<double>(big_run.total_insns));
}

} // namespace
} // namespace prorace::pmu

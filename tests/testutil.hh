/**
 * @file
 * Shared helpers for ProRace tests: representative programs with loops,
 * calls, indirect transfers, and synchronization.
 */

#ifndef PRORACE_TESTS_TESTUTIL_HH
#define PRORACE_TESTS_TESTUTIL_HH

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "asmkit/builder.hh"
#include "vm/machine.hh"

namespace prorace::testutil {

using asmkit::Program;
using asmkit::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;

/**
 * A control-flow-rich two-worker program:
 * main spawns two workers; each worker runs a loop that conditionally
 * calls a helper, makes an indirect call through a two-entry dispatch
 * table, and updates a per-thread accumulator under a lock.
 */
inline Program
makeBranchyProgram(int iterations = 50)
{
    ProgramBuilder b;
    b.global("mtx", 8);
    b.global("acc", 2 * 8);
    b.global("table", 2 * 8); // code pointers, patched at startup

    b.label("main");
    // Initialize the dispatch table with code pointers.
    b.movLabel(Reg::rax, "op_add3");
    b.store(b.symRef("table", 0), Reg::rax);
    b.movLabel(Reg::rax, "op_add7");
    b.store(b.symRef("table", 8), Reg::rax);
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "worker", Reg::r12);
    b.movri(Reg::r12, 1);
    b.spawn(Reg::r9, "worker", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.halt();

    b.beginFunction("worker");
    b.movri(Reg::rcx, 0);              // loop counter
    b.movri(Reg::rbx, 0);              // accumulator
    b.label("w_loop");
    // Conditionally call the helper on even iterations.
    b.movrr(Reg::rax, Reg::rcx);
    b.aluri(AluOp::kAnd, Reg::rax, 1);
    b.cmpri(Reg::rax, 0);
    b.jcc(CondCode::kNe, "w_odd");
    b.call("helper");
    b.alurr(AluOp::kAdd, Reg::rbx, Reg::rax);
    b.label("w_odd");
    // Indirect call: table[rcx & 1].
    b.movrr(Reg::rax, Reg::rcx);
    b.aluri(AluOp::kAnd, Reg::rax, 1);
    b.lea(Reg::rdx, b.symRef("table"));
    b.load(Reg::rdx, MemOperand::baseIndex(Reg::rdx, Reg::rax, 8));
    b.callind(Reg::rdx);
    b.alurr(AluOp::kAdd, Reg::rbx, Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, iterations);
    b.jcc(CondCode::kLt, "w_loop");
    // acc[tid] = rbx under the lock.
    b.lock(b.symRef("mtx"));
    b.lea(Reg::rdx, b.symRef("acc"));
    b.store(MemOperand::baseIndex(Reg::rdx, Reg::rdi, 8), Reg::rbx);
    b.unlock(b.symRef("mtx"));
    b.halt();
    b.endFunction();

    b.beginFunction("helper");
    b.movri(Reg::rax, 10);
    b.ret();
    b.endFunction();

    b.beginFunction("op_add3");
    b.movri(Reg::rax, 3);
    b.ret();
    b.endFunction();

    b.beginFunction("op_add7");
    b.movri(Reg::rax, 7);
    b.ret();
    b.endFunction();

    return b.build();
}

/**
 * The seed for a randomized test: @p fallback unless PRORACE_TEST_SEED
 * is set, in which case the environment wins. Every randomized test
 * draws its seed through here (or testSeeds) so a CI failure
 * reproduces locally by exporting the seed the failure printed.
 */
inline uint64_t
testSeed(uint64_t fallback)
{
    if (const char *env = std::getenv("PRORACE_TEST_SEED"))
        return std::strtoull(env, nullptr, 10);
    return fallback;
}

/**
 * Seed list for sweep-style tests. PRORACE_TEST_SEED collapses the
 * sweep to that single seed, so one exported variable reproduces a
 * failure from any seed-parameterized test.
 */
inline std::vector<uint64_t>
testSeeds(std::vector<uint64_t> fallback)
{
    if (const char *env = std::getenv("PRORACE_TEST_SEED"))
        return {std::strtoull(env, nullptr, 10)};
    return fallback;
}

/** Reproduction hint printed (via SCOPED_TRACE) on any seed failure. */
inline std::string
seedMessage(uint64_t seed)
{
    return "random seed " + std::to_string(seed) +
        " (reproduce with PRORACE_TEST_SEED=" + std::to_string(seed) +
        ")";
}

/**
 * Attach the seed to every assertion in the enclosing scope. Expands
 * to SCOPED_TRACE, so it is usable only inside gtest test bodies.
 */
#define PRORACE_SEED_TRACE(seed) \
    SCOPED_TRACE(::prorace::testutil::seedMessage(seed))

/** Per-thread oracle paths extracted from a machine's path log. */
inline std::map<uint32_t, std::vector<uint32_t>>
oraclePaths(const vm::Machine &machine)
{
    std::map<uint32_t, std::vector<uint32_t>> paths;
    for (const auto &[tid, index] : machine.pathLog())
        paths[tid].push_back(index);
    return paths;
}

} // namespace prorace::testutil

#endif // PRORACE_TESTS_TESTUTIL_HH

/**
 * @file
 * Parameterized end-to-end properties of the full pipeline, swept over
 * all twelve Table 2 bugs and over seeds.
 */

#include <gtest/gtest.h>

#include "baseline/racez.hh"
#include "core/pipeline.hh"
#include "pmu/pt_decode.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "workload/racybugs.hh"

namespace prorace {
namespace {

/** Every Table 2 bug must be detectable by ProRace at period 100. */
class EveryBug : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryBug, ProRaceDetectsItAtDensePeriod)
{
    workload::Workload w = workload::makeRacyBug(GetParam(), 0.8);
    // Schedules are uncontrolled; a single trace may miss the race, so
    // allow a few attempts (the paper's Table 2 row is a probability).
    bool detected = false;
    for (uint64_t seed = 1; seed <= 4 && !detected; ++seed) {
        auto cfg = core::proRaceConfig(100, seed, w.pt_filter);
        auto result = core::runPipeline(*w.program, w.setup, cfg);
        detected = workload::bugDetected(w.bugs[0], result.offline.report);
    }
    EXPECT_TRUE(detected) << GetParam();
}

TEST_P(EveryBug, ReportNeverNamesTheProtectedCounter)
{
    // The properly locked stats counter must never be reported, at any
    // period: reconstructed traces must not break the lock's ordering.
    workload::Workload w = workload::makeRacyBug(GetParam(), 0.5);
    const uint64_t safe = w.program->symbol("safe_counter").addr;
    for (uint64_t period : {100ull, 10000ull}) {
        auto cfg = core::proRaceConfig(period, 3, w.pt_filter);
        auto result = core::runPipeline(*w.program, w.setup, cfg);
        EXPECT_FALSE(result.offline.report.containsAddressRange(safe, 8))
            << GetParam() << " period " << period;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, EveryBug, ::testing::ValuesIn(workload::racyBugIds()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '.')
                c = '_';
        }
        return name;
    });

/** Reconstruction exactness must hold across machine seeds. */
class SeedSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SeedSweep, ReconstructedAccessesAreNeverPhantom)
{
    // Every reconstructed (tid, insn, addr, is_write) must have occurred
    // in the real execution: reconstruction may be incomplete, never
    // wrong.
    workload::Workload w = workload::makeRacyBug("cherokee-0.9.2", 0.4);
    vm::MachineConfig mcfg;
    mcfg.seed = GetParam();
    mcfg.record_memory_log = true;
    driver::TraceConfig tcfg;
    tcfg.pebs_period = 150;
    tcfg.seed = GetParam() * 31;
    tcfg.pt.filter = w.pt_filter;

    vm::Machine machine(*w.program, mcfg);
    driver::TracingSession tracing(tcfg, mcfg.num_cores);
    machine.setObserver(&tracing);
    w.setup(machine);
    machine.run();
    trace::RunTrace trace = tracing.finish();
    for (uint32_t tid = 0; tid < machine.numThreads(); ++tid)
        trace.meta.threads.push_back({tid, machine.thread(tid).entry_ip});

    std::map<uint32_t, std::set<std::tuple<uint32_t, uint64_t, bool>>>
        truth;
    for (const auto &e : machine.memoryLog())
        truth[e.tid].insert({e.insn_index, e.addr, e.is_write});

    auto paths = pmu::decodePt(*w.program, w.pt_filter, trace);
    auto aligns = replay::alignTrace(*w.program, paths, trace);
    replay::Replayer rep(*w.program, {});
    auto accesses = rep.replayAll(paths, aligns, trace);
    ASSERT_GT(accesses.size(), 100u);
    for (const auto &a : accesses) {
        EXPECT_TRUE(truth[a.tid].count({a.insn_index, a.addr, a.is_write}))
            << "phantom access: tid " << a.tid << " insn #"
            << a.insn_index << " addr 0x" << std::hex << a.addr
            << std::dec << " ("
            << detect::accessOriginName(a.origin) << ")";
    }
}

TEST_P(SeedSweep, SyncTimestampsRespectCausality)
{
    // The machine's sync records for one mutex must be interleaving-
    // consistent: lock regions never overlap and TSCs never run
    // backwards in record order (the invariant-TSC property the offline
    // merge relies on).
    workload::Workload w = workload::makeRacyBug("mysql-644", 0.4);
    vm::MachineConfig mcfg;
    mcfg.seed = GetParam();
    driver::TraceConfig tcfg;
    tcfg.pebs_period = 300;
    tcfg.pt.filter = w.pt_filter;
    vm::Machine machine(*w.program, mcfg);
    driver::TracingSession tracing(tcfg, mcfg.num_cores);
    machine.setObserver(&tracing);
    w.setup(machine);
    machine.run();
    trace::RunTrace trace = tracing.finish();

    const uint64_t mtx = w.program->symbol("mtx").addr;
    int64_t holder = -1;
    uint64_t last_tsc = 0;
    for (const auto &s : trace.sync) {
        if (s.object != mtx)
            continue;
        EXPECT_GE(s.tsc, last_tsc) << "TSC ran backwards";
        last_tsc = s.tsc;
        if (s.kind == vm::SyncKind::kLock) {
            EXPECT_EQ(holder, -1) << "overlapping critical sections";
            holder = s.tid;
        } else if (s.kind == vm::SyncKind::kUnlock) {
            EXPECT_EQ(holder, static_cast<int64_t>(s.tid));
            holder = -1;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace prorace

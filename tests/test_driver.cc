/**
 * @file
 * Tests for the tracing drivers: sampling behavior, overhead model,
 * drops, storage backpressure, and trace serialization.
 */

#include <gtest/gtest.h>

#include "core/session.hh"
#include "testutil.hh"
#include "trace/trace_file.hh"

namespace prorace::driver {
namespace {

using core::RunArtifacts;
using core::Session;
using core::SessionOptions;
using testutil::makeBranchyProgram;

RunArtifacts
runTraced(const asmkit::Program &program, TraceConfig tracing,
          uint64_t machine_seed = 3, bool baseline = true)
{
    SessionOptions opt;
    opt.machine.seed = machine_seed;
    opt.tracing = tracing;
    opt.run_baseline = baseline;
    return Session::run(
        program, [](vm::Machine &m) { m.addThread("main"); }, opt);
}

TEST(TracingSession, SampleCountTracksPeriod)
{
    asmkit::Program program = makeBranchyProgram(300);
    TraceConfig cfg;
    cfg.pebs_period = 100;
    RunArtifacts run = runTraced(program, cfg);
    ASSERT_GT(run.total_mem_ops, 1000u);
    const double expected =
        static_cast<double>(run.total_mem_ops) / 100.0;
    EXPECT_NEAR(static_cast<double>(run.stats.samples_taken), expected,
                expected * 0.1 + 4);
}

TEST(TracingSession, SampledRecordsAreConsistentWithOracle)
{
    // Every PEBS record must correspond to a real access: same address
    // as the oracle log records for that (tid, insn) at that TSC.
    asmkit::Program program = makeBranchyProgram(100);
    vm::MachineConfig mcfg;
    mcfg.seed = 5;
    mcfg.record_memory_log = true;
    TraceConfig tcfg;
    tcfg.pebs_period = 10;

    vm::Machine machine(program, mcfg);
    TracingSession tracing(tcfg, mcfg.num_cores);
    machine.setObserver(&tracing);
    machine.addThread("main");
    machine.run();
    trace::RunTrace trace = tracing.finish();

    // Index the oracle by (tid, tsc).
    std::map<std::pair<uint32_t, uint64_t>,
             std::vector<vm::MemoryLogEntry>> oracle;
    for (const auto &e : machine.memoryLog())
        oracle[{e.tid, e.tsc}].push_back(e);

    ASSERT_GT(trace.pebs.size(), 10u);
    for (const auto &rec : trace.pebs) {
        auto it = oracle.find({rec.tid, rec.tsc});
        ASSERT_NE(it, oracle.end())
            << "sample with no oracle event (tid " << rec.tid << ")";
        bool matched = false;
        for (const auto &e : it->second) {
            if (e.insn_index == rec.insn_index && e.addr == rec.addr &&
                e.is_write == rec.is_write) {
                matched = true;
            }
        }
        EXPECT_TRUE(matched) << "sample does not match oracle access";
    }
}

TEST(TracingSession, ProRaceDriverCheaperThanVanilla)
{
    asmkit::Program program = makeBranchyProgram(400);
    // A small DS area keeps the interrupt path exercised at test scale.
    TraceConfig vanilla;
    vanilla.driver = DriverKind::kVanilla;
    vanilla.pebs_period = 20;
    vanilla.costs.ds_bytes = 2048;
    TraceConfig prorace;
    prorace.driver = DriverKind::kProRace;
    prorace.pebs_period = 20;
    prorace.costs.ds_bytes = 2048;

    RunArtifacts v = runTraced(program, vanilla);
    RunArtifacts p = runTraced(program, prorace);
    EXPECT_GT(v.overhead(), p.overhead() * 1.5)
        << "vanilla " << v.overhead() << " vs prorace " << p.overhead();
    EXPECT_GT(p.overhead(), 0.0);
}

TEST(TracingSession, OverheadGrowsAsPeriodShrinks)
{
    asmkit::Program program = makeBranchyProgram(400);
    double last = -1;
    for (uint64_t period : {10000ull, 100ull, 10ull}) {
        TraceConfig cfg;
        cfg.pebs_period = period;
        RunArtifacts run = runTraced(program, cfg);
        EXPECT_GT(run.overhead(), last)
            << "period " << period << " should cost more than the larger";
        last = run.overhead();
    }
}

TEST(TracingSession, RandomizedFirstPeriodDiversifiesSamples)
{
    asmkit::Program program = makeBranchyProgram(60);
    auto first_sample_insn = [&](uint64_t tracing_seed) {
        TraceConfig cfg;
        cfg.pebs_period = 997;
        cfg.seed = tracing_seed;
        RunArtifacts run = runTraced(program, cfg, 3, false);
        return run.trace.pebs.empty() ? ~0u
                                      : run.trace.pebs.front().insn_index;
    };
    std::set<uint32_t> seen;
    for (uint64_t s = 1; s <= 6; ++s)
        seen.insert(first_sample_insn(s));
    EXPECT_GT(seen.size(), 1u)
        << "ProRace driver must start sampling at random offsets";
}

TEST(TracingSession, VanillaThrottlesAtTinyPeriods)
{
    asmkit::Program program = makeBranchyProgram(500);
    TraceConfig cfg;
    cfg.driver = DriverKind::kVanilla;
    cfg.pebs_period = 2;
    cfg.costs.ds_bytes = 2048;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    EXPECT_GT(run.stats.samples_dropped_throttle, 0u)
        << "the kernel must drop records under interrupt pressure";
    EXPECT_LT(run.trace.pebs.size(), run.stats.samples_taken);
}

TEST(TracingSession, BreakdownIsDominatedByPebs)
{
    // Paper §7.2: PEBS contributes 97-99% of tracing overhead; PT and
    // sync tracing are small.
    asmkit::Program program = makeBranchyProgram(400);
    TraceConfig cfg;
    cfg.pebs_period = 20;
    cfg.costs.ds_bytes = 2048;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    const auto &s = run.stats;
    ASSERT_GT(s.totalCycles(), 0u);
    const double pebs_share = static_cast<double>(s.pebs_cycles) /
        static_cast<double>(s.totalCycles());
    EXPECT_GT(pebs_share, 0.80);
}

TEST(TracingSession, PebsBytesDominateTraceSize)
{
    // Paper §7.3: the PEBS trace dominates total trace size. The branchy
    // test program is unusually indirect-call-dense (one indirect call
    // per ~5 memory ops), so the margin here is modest; realistic
    // workloads in bench/ show the ~99% split.
    asmkit::Program program = makeBranchyProgram(400);
    TraceConfig cfg;
    cfg.pebs_period = 20;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    EXPECT_GT(run.trace.meta.pebs_bytes, 4 * run.trace.meta.pt_bytes);
}

TEST(TracingSession, DisablingPartsRemovesTheirTraces)
{
    asmkit::Program program = makeBranchyProgram(50);
    TraceConfig cfg;
    cfg.enable_pebs = false;
    cfg.enable_sync = false;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    EXPECT_EQ(run.trace.pebs.size(), 0u);
    EXPECT_EQ(run.trace.sync.size(), 0u);
    EXPECT_GT(run.trace.meta.pt_bytes, 0u);
}

TEST(TracingSession, SyncTraceOrderedPerThread)
{
    asmkit::Program program = makeBranchyProgram(50);
    TraceConfig cfg;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    ASSERT_GT(run.trace.sync.size(), 4u);
    std::map<uint32_t, uint64_t> last_tsc;
    bool saw_lock = false, saw_spawn = false, saw_exit = false;
    for (const auto &s : run.trace.sync) {
        EXPECT_GE(s.tsc, last_tsc[s.tid]) << "per-thread sync order";
        last_tsc[s.tid] = s.tsc;
        saw_lock |= s.kind == vm::SyncKind::kLock;
        saw_spawn |= s.kind == vm::SyncKind::kSpawn;
        saw_exit |= s.kind == vm::SyncKind::kThreadExit;
    }
    EXPECT_TRUE(saw_lock);
    EXPECT_TRUE(saw_spawn);
    EXPECT_TRUE(saw_exit);
}

TEST(TraceFile, SerializationRoundTrips)
{
    asmkit::Program program = makeBranchyProgram(60);
    TraceConfig cfg;
    cfg.pebs_period = 25;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    const trace::RunTrace &t = run.trace;

    const std::vector<uint8_t> bytes = trace::serializeTrace(t);
    trace::RunTrace rt = trace::deserializeTrace(bytes);

    EXPECT_EQ(rt.meta.pebs_period, t.meta.pebs_period);
    EXPECT_EQ(rt.meta.threads.size(), t.meta.threads.size());
    ASSERT_EQ(rt.pebs.size(), t.pebs.size());
    for (size_t i = 0; i < t.pebs.size(); ++i) {
        EXPECT_EQ(rt.pebs[i].tid, t.pebs[i].tid);
        EXPECT_EQ(rt.pebs[i].insn_index, t.pebs[i].insn_index);
        EXPECT_EQ(rt.pebs[i].addr, t.pebs[i].addr);
        EXPECT_EQ(rt.pebs[i].tsc, t.pebs[i].tsc);
        EXPECT_EQ(rt.pebs[i].regs, t.pebs[i].regs);
    }
    ASSERT_EQ(rt.sync.size(), t.sync.size());
    for (size_t i = 0; i < t.sync.size(); ++i) {
        EXPECT_EQ(rt.sync[i].kind, t.sync[i].kind);
        EXPECT_EQ(rt.sync[i].tsc, t.sync[i].tsc);
    }
    ASSERT_EQ(rt.pt.size(), t.pt.size());
    for (size_t i = 0; i < t.pt.size(); ++i) {
        EXPECT_EQ(rt.pt[i].bit_count, t.pt[i].bit_count);
        EXPECT_EQ(rt.pt[i].bytes, t.pt[i].bytes);
    }
}

TEST(TraceFile, RejectsGarbage)
{
    std::vector<uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_THROW(trace::deserializeTrace(garbage), std::runtime_error);
}

TEST(TraceFile, SaveLoadFile)
{
    asmkit::Program program = makeBranchyProgram(30);
    TraceConfig cfg;
    RunArtifacts run = runTraced(program, cfg, 3, false);
    const std::string path = "/tmp/prorace_test_trace.bin";
    trace::saveTrace(run.trace, path);
    trace::RunTrace loaded = trace::loadTrace(path);
    EXPECT_EQ(loaded.pebs.size(), run.trace.pebs.size());
    EXPECT_EQ(loaded.meta.total_insns, run.trace.meta.total_insns);
    std::remove(path.c_str());
}

TEST(Session, BaselineAndOverheadArePlausible)
{
    asmkit::Program program = makeBranchyProgram(200);
    TraceConfig cfg;
    cfg.pebs_period = 1000;
    RunArtifacts run = runTraced(program, cfg);
    EXPECT_GT(run.baseline_cycles, 0u);
    EXPECT_GE(run.traced_cycles, run.baseline_cycles / 2);
    EXPECT_GT(run.overhead(), -0.2);
    EXPECT_LT(run.overhead(), 2.0) << "period 1000 should be affordable";
    EXPECT_GT(run.traceMBPerSecond(), 0.0);
}

} // namespace
} // namespace prorace::driver

/**
 * @file
 * Tests for the ground-truth oracle: generator determinism and
 * structural validity, scorer arithmetic on hand-built sets, and the
 * end-to-end guarantee that the full pipeline recovers every planted
 * race at period 1 with no false positives.
 */

#include <set>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "detect/report.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "vm/machine.hh"

#include "testutil.hh"

namespace prorace::oracle {
namespace {

TEST(OracleGenerator, SameSeedYieldsByteIdenticalProgramAndTruth)
{
    GeneratorConfig cfg;
    cfg.seed = testutil::testSeed(42);
    PRORACE_SEED_TRACE(cfg.seed);
    const GeneratedWorkload a = generate(cfg);
    const GeneratedWorkload b = generate(cfg);

    EXPECT_EQ(a.workload.program->listing(),
              b.workload.program->listing());
    EXPECT_EQ(a.truth.racy_pairs, b.truth.racy_pairs);
    ASSERT_EQ(a.truth.sites.size(), b.truth.sites.size());
    for (size_t i = 0; i < a.truth.sites.size(); ++i) {
        EXPECT_EQ(a.truth.sites[i].symbol, b.truth.sites[i].symbol);
        EXPECT_EQ(a.truth.sites[i].addr, b.truth.sites[i].addr);
        EXPECT_EQ(a.truth.sites[i].load_insn, b.truth.sites[i].load_insn);
        EXPECT_EQ(a.truth.sites[i].store_insn,
                  b.truth.sites[i].store_insn);
    }
    EXPECT_EQ(a.workload.name, b.workload.name);
}

TEST(OracleGenerator, DifferentSeedsDiffer)
{
    GeneratorConfig a_cfg, b_cfg;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    EXPECT_NE(generate(a_cfg).workload.program->listing(),
              generate(b_cfg).workload.program->listing());
}

TEST(OracleGenerator, TruthPairsFollowLoadStoreRule)
{
    // A racy site with load L and store S plants {(L,S), (S,S)} and
    // nothing else; non-racy sites plant nothing.
    SiteTruth racy;
    racy.discipline = SiteDiscipline::kRacy;
    racy.load_insn = 9;
    racy.store_insn = 4;
    EXPECT_EQ(GroundTruth::pairsOf(racy),
              (RacePairSet{{4, 9}, {4, 4}}));

    SiteTruth locked = racy;
    locked.discipline = SiteDiscipline::kLocked;
    EXPECT_TRUE(GroundTruth::pairsOf(locked).empty());
}

TEST(OracleGenerator, PlantedSitesReallyRaceInTheMachine)
{
    // Ground truth must describe the execution, not just the listing:
    // every racy address is touched by >= 2 threads with at least one
    // write, through exactly the truth's load/store instructions.
    GeneratorConfig cfg;
    cfg.seed = testutil::testSeed(7);
    PRORACE_SEED_TRACE(cfg.seed);
    cfg.items = 40;
    const GeneratedWorkload gw = generate(cfg);

    vm::MachineConfig mc;
    mc.seed = 3;
    mc.record_memory_log = true;
    vm::Machine m(*gw.workload.program, mc);
    gw.workload.setup(m);
    ASSERT_EQ(m.run(), vm::RunStatus::kFinished);

    for (const SiteTruth &site : gw.truth.sites) {
        std::set<uint32_t> tids, insns;
        bool wrote = false;
        for (const auto &e : m.memoryLog()) {
            if (e.addr < site.addr || e.addr >= site.addr + site.width)
                continue;
            if (e.insn_index != site.load_insn &&
                e.insn_index != site.store_insn)
                continue;
            tids.insert(e.tid);
            insns.insert(e.insn_index);
            wrote = wrote || e.is_write;
        }
        EXPECT_GE(tids.size(), 2u) << site.symbol;
        EXPECT_TRUE(wrote) << site.symbol;
        EXPECT_TRUE(insns.count(site.store_insn)) << site.symbol;
    }
    EXPECT_EQ(gw.workload.bugs.size(), cfg.racy_sites);
}

TEST(OracleScorer, JoinsHandBuiltSetsExactly)
{
    GroundTruth truth;
    truth.racy_pairs = {{1, 5}, {5, 5}, {8, 9}};

    detect::RaceReport report;
    const auto add = [&report](uint32_t a, uint32_t b) {
        detect::DataRace race;
        race.prior.insn_index = a;
        race.current.insn_index = b;
        report.add(race);
    };
    add(5, 1);  // planted (normalizes to (1,5))
    add(5, 5);  // planted
    add(2, 3);  // spurious
    add(3, 2);  // duplicate of the spurious pair, must dedup

    const OracleScore score = scoreReport(truth, report);
    EXPECT_EQ(score.truth_pairs, 3u);
    EXPECT_EQ(score.detected_pairs, 2u);
    EXPECT_EQ(score.reported_pairs, 3u);
    EXPECT_EQ(score.false_positives, 1u);
    EXPECT_EQ(score.missed, (RacePairSet{{8, 9}}));
    EXPECT_EQ(score.spurious, (RacePairSet{{2, 3}}));
    EXPECT_DOUBLE_EQ(score.recall(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(score.precision(), 2.0 / 3.0);
}

TEST(OracleScorer, EmptyEdgeCases)
{
    const OracleScore empty = scoreReport({}, detect::RaceReport{});
    EXPECT_DOUBLE_EQ(empty.recall(), 1.0);
    EXPECT_DOUBLE_EQ(empty.precision(), 1.0);

    ScoreAccumulator acc;
    EXPECT_DOUBLE_EQ(acc.recall(), 1.0);
    acc.add(empty);
    EXPECT_EQ(acc.runs, 1u);
    EXPECT_DOUBLE_EQ(acc.precision(), 1.0);
}

TEST(OracleEndToEnd, FullRecallAndPrecisionAtPeriodOne)
{
    // Period 1 samples every access: the pipeline must find every
    // planted pair and nothing else on small workloads.
    for (uint64_t seed : testutil::testSeeds({11ull, 23ull})) {
        PRORACE_SEED_TRACE(seed);
        GeneratorConfig cfg;
        cfg.seed = seed;
        cfg.items = 50;
        const GeneratedWorkload gw = generate(cfg);
        auto pc = core::proRaceConfig(1, 5, gw.workload.pt_filter);
        auto result =
            core::runPipeline(*gw.workload.program, gw.workload.setup, pc);
        const OracleScore score = scoreReport(gw.truth,
                                              result.offline.report);
        EXPECT_DOUBLE_EQ(score.recall(), 1.0) << gw.workload.name;
        EXPECT_EQ(score.false_positives, 0u) << gw.workload.name;
    }
}

TEST(OracleGenerator, SyncFamilyTruthPairsFollowTheLoadStoreRule)
{
    SiteTruth site;
    site.load_insn = 9;
    site.store_insn = 4;

    for (SiteDiscipline d : {SiteDiscipline::kRwUpgradeRacy,
                             SiteDiscipline::kSemMisuseRacy,
                             SiteDiscipline::kSpinPubRacy}) {
        site.discipline = d;
        EXPECT_EQ(GroundTruth::pairsOf(site),
                  (RacePairSet{{4, 9}, {4, 4}}))
            << siteDisciplineName(d);
    }

    // Relaxed-atomic: the RMW is atomic on both sides, so only the
    // plain load vs RMW-write pair is planted — never (S,S).
    site.discipline = SiteDiscipline::kAtomicRelaxedRacy;
    EXPECT_EQ(GroundTruth::pairsOf(site), (RacePairSet{{4, 9}}));

    for (SiteDiscipline d : {SiteDiscipline::kRwLocked,
                             SiteDiscipline::kSemSignal,
                             SiteDiscipline::kSpinLocked,
                             SiteDiscipline::kAtomicRelAcq}) {
        site.discipline = d;
        EXPECT_TRUE(GroundTruth::pairsOf(site).empty())
            << siteDisciplineName(d);
    }
}

TEST(OracleGenerator, SyncFamilyNamesAreDistinct)
{
    std::set<std::string> names;
    for (SiteDiscipline d : {SiteDiscipline::kRacy,
                             SiteDiscipline::kLocked,
                             SiteDiscipline::kAtomic,
                             SiteDiscipline::kRwUpgradeRacy,
                             SiteDiscipline::kSemMisuseRacy,
                             SiteDiscipline::kSpinPubRacy,
                             SiteDiscipline::kAtomicRelaxedRacy,
                             SiteDiscipline::kRwLocked,
                             SiteDiscipline::kSemSignal,
                             SiteDiscipline::kSpinLocked,
                             SiteDiscipline::kAtomicRelAcq})
        names.insert(siteDisciplineName(d));
    EXPECT_EQ(names.size(), 11u);
}

/** A config planting every sync family beside the legacy ones. */
GeneratorConfig
allFamiliesConfig(uint64_t seed)
{
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.items = 40;
    cfg.rw_racy_sites = 1;
    cfg.sem_racy_sites = 1;
    cfg.spin_racy_sites = 1;
    cfg.relaxed_racy_sites = 1;
    cfg.rw_locked_sites = 1;
    cfg.sem_signal_sites = 1;
    cfg.spin_locked_sites = 1;
    cfg.relacq_sites = 1;
    return cfg;
}

TEST(OracleGenerator, SyncSitesReallyRaceInTheMachine)
{
    // The sync-family ground truth must describe the execution too:
    // every racy sync site is touched by >= 2 threads with at least
    // one write, through exactly the truth's instructions.
    const GeneratorConfig cfg = allFamiliesConfig(testutil::testSeed(19));
    PRORACE_SEED_TRACE(cfg.seed);
    const GeneratedWorkload gw = generate(cfg);

    vm::MachineConfig mc;
    mc.seed = 3;
    mc.record_memory_log = true;
    vm::Machine m(*gw.workload.program, mc);
    gw.workload.setup(m);
    ASSERT_EQ(m.run(), vm::RunStatus::kFinished);

    size_t racy_sync_sites = 0;
    for (const SiteTruth &site : gw.truth.sites) {
        if (!siteDisciplineRacy(site.discipline) ||
            site.discipline == SiteDiscipline::kRacy)
            continue;
        ++racy_sync_sites;
        std::set<uint32_t> tids, insns;
        bool wrote = false;
        for (const auto &e : m.memoryLog()) {
            if (e.addr < site.addr || e.addr >= site.addr + site.width)
                continue;
            if (e.insn_index != site.load_insn &&
                e.insn_index != site.store_insn)
                continue;
            tids.insert(e.tid);
            insns.insert(e.insn_index);
            wrote = wrote || e.is_write;
        }
        EXPECT_GE(tids.size(), 2u) << site.symbol;
        EXPECT_TRUE(wrote) << site.symbol;
        EXPECT_TRUE(insns.count(site.store_insn)) << site.symbol;
    }
    EXPECT_EQ(racy_sync_sites, 4u);
    EXPECT_EQ(gw.workload.bugs.size(), cfg.racy_sites + 4u);
}

/** Runs one config through the period-1 pipeline and scores it. */
void
expectPerfectAtPeriodOne(const GeneratorConfig &cfg)
{
    const GeneratedWorkload gw = generate(cfg);
    auto pc = core::proRaceConfig(1, 5, gw.workload.pt_filter);
    auto result =
        core::runPipeline(*gw.workload.program, gw.workload.setup, pc);
    const OracleScore score = scoreReport(gw.truth, result.offline.report);
    EXPECT_DOUBLE_EQ(score.recall(), 1.0) << gw.workload.name;
    EXPECT_EQ(score.false_positives, 0u) << gw.workload.name;
}

/** One racy sync family alone (plus its clean sibling), two seeds. */
void
runFamilyAtPeriodOne(unsigned GeneratorConfig::*racy,
                     unsigned GeneratorConfig::*clean)
{
    for (uint64_t seed : testutil::testSeeds({31ull, 47ull})) {
        PRORACE_SEED_TRACE(seed);
        GeneratorConfig cfg;
        cfg.seed = seed;
        cfg.items = 40;
        cfg.racy_sites = 0;
        cfg.*racy = 2;
        cfg.*clean = 1;
        expectPerfectAtPeriodOne(cfg);
    }
}

TEST(OracleEndToEnd, RwUpgradeRacesFoundAtPeriodOne)
{
    runFamilyAtPeriodOne(&GeneratorConfig::rw_racy_sites,
                         &GeneratorConfig::rw_locked_sites);
}

TEST(OracleEndToEnd, SemMisuseRacesFoundAtPeriodOne)
{
    runFamilyAtPeriodOne(&GeneratorConfig::sem_racy_sites,
                         &GeneratorConfig::sem_signal_sites);
}

TEST(OracleEndToEnd, SpinPublicationRacesFoundAtPeriodOne)
{
    runFamilyAtPeriodOne(&GeneratorConfig::spin_racy_sites,
                         &GeneratorConfig::spin_locked_sites);
}

TEST(OracleEndToEnd, RelaxedAtomicRacesFoundAtPeriodOne)
{
    runFamilyAtPeriodOne(&GeneratorConfig::relaxed_racy_sites,
                         &GeneratorConfig::relacq_sites);
}

TEST(OracleEndToEnd, CleanSyncFamiliesProduceNoRaces)
{
    // Only properly synchronized sync-family sites: dense sampling must
    // report nothing — the precision half of the HB-rule guarantee.
    for (uint64_t seed : testutil::testSeeds({13ull, 29ull})) {
        PRORACE_SEED_TRACE(seed);
        GeneratorConfig cfg;
        cfg.seed = seed;
        cfg.items = 40;
        cfg.racy_sites = 0;
        cfg.rw_locked_sites = 2;
        cfg.sem_signal_sites = 2;
        cfg.spin_locked_sites = 2;
        cfg.relacq_sites = 2;
        const GeneratedWorkload gw = generate(cfg);
        EXPECT_TRUE(gw.truth.racy_pairs.empty());
        auto pc = core::proRaceConfig(1, 7, gw.workload.pt_filter);
        auto result = core::runPipeline(*gw.workload.program,
                                        gw.workload.setup, pc);
        EXPECT_TRUE(result.offline.report.empty())
            << gw.workload.name << ":\n"
            << result.offline.report.format(gw.workload.program.get());
    }
}

TEST(OracleEndToEnd, AllFamiliesTogetherFullRecallAtPeriodOne)
{
    for (uint64_t seed : testutil::testSeeds({17ull, 37ull})) {
        PRORACE_SEED_TRACE(seed);
        expectPerfectAtPeriodOne(allFamiliesConfig(seed));
    }
}

TEST(OracleEndToEnd, SyncBatteryIsDiverseAndWellFormed)
{
    const auto battery = syncBattery(700, 8);
    ASSERT_EQ(battery.size(), 8u);
    std::set<unsigned> thread_counts;
    for (const GeneratorConfig &cfg : battery) {
        thread_counts.insert(cfg.threads);
        const unsigned sync_racy = cfg.rw_racy_sites +
            cfg.sem_racy_sites + cfg.spin_racy_sites +
            cfg.relaxed_racy_sites;
        const unsigned sync_clean = cfg.rw_locked_sites +
            cfg.sem_signal_sites + cfg.spin_locked_sites +
            cfg.relacq_sites;
        EXPECT_GE(sync_racy, 1u) << cfg.name();
        EXPECT_GE(sync_clean, 1u) << cfg.name();
        const GeneratedWorkload gw = generate(cfg);
        EXPECT_FALSE(gw.truth.racy_pairs.empty()) << gw.workload.name;
        EXPECT_GT(gw.workload.program->size(), 0u);
    }
    EXPECT_GE(thread_counts.size(), 3u)
        << "battery should vary thread counts";
}

TEST(OracleEndToEnd, StandardBatteryIsDiverseAndWellFormed)
{
    const auto battery = standardBattery(500, 6);
    ASSERT_EQ(battery.size(), 6u);
    std::set<unsigned> thread_counts;
    for (const GeneratorConfig &cfg : battery) {
        thread_counts.insert(cfg.threads);
        const GeneratedWorkload gw = generate(cfg);
        EXPECT_FALSE(gw.truth.racy_pairs.empty()) << gw.workload.name;
        EXPECT_GT(gw.workload.program->size(), 0u);
    }
    EXPECT_GE(thread_counts.size(), 3u)
        << "battery should vary thread counts";
}

} // namespace
} // namespace prorace::oracle

/**
 * @file
 * Tests for the ground-truth oracle: generator determinism and
 * structural validity, scorer arithmetic on hand-built sets, and the
 * end-to-end guarantee that the full pipeline recovers every planted
 * race at period 1 with no false positives.
 */

#include <set>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "detect/report.hh"
#include "oracle/generator.hh"
#include "oracle/scorer.hh"
#include "vm/machine.hh"

#include "testutil.hh"

namespace prorace::oracle {
namespace {

TEST(OracleGenerator, SameSeedYieldsByteIdenticalProgramAndTruth)
{
    GeneratorConfig cfg;
    cfg.seed = testutil::testSeed(42);
    PRORACE_SEED_TRACE(cfg.seed);
    const GeneratedWorkload a = generate(cfg);
    const GeneratedWorkload b = generate(cfg);

    EXPECT_EQ(a.workload.program->listing(),
              b.workload.program->listing());
    EXPECT_EQ(a.truth.racy_pairs, b.truth.racy_pairs);
    ASSERT_EQ(a.truth.sites.size(), b.truth.sites.size());
    for (size_t i = 0; i < a.truth.sites.size(); ++i) {
        EXPECT_EQ(a.truth.sites[i].symbol, b.truth.sites[i].symbol);
        EXPECT_EQ(a.truth.sites[i].addr, b.truth.sites[i].addr);
        EXPECT_EQ(a.truth.sites[i].load_insn, b.truth.sites[i].load_insn);
        EXPECT_EQ(a.truth.sites[i].store_insn,
                  b.truth.sites[i].store_insn);
    }
    EXPECT_EQ(a.workload.name, b.workload.name);
}

TEST(OracleGenerator, DifferentSeedsDiffer)
{
    GeneratorConfig a_cfg, b_cfg;
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    EXPECT_NE(generate(a_cfg).workload.program->listing(),
              generate(b_cfg).workload.program->listing());
}

TEST(OracleGenerator, TruthPairsFollowLoadStoreRule)
{
    // A racy site with load L and store S plants {(L,S), (S,S)} and
    // nothing else; non-racy sites plant nothing.
    SiteTruth racy;
    racy.discipline = SiteDiscipline::kRacy;
    racy.load_insn = 9;
    racy.store_insn = 4;
    EXPECT_EQ(GroundTruth::pairsOf(racy),
              (RacePairSet{{4, 9}, {4, 4}}));

    SiteTruth locked = racy;
    locked.discipline = SiteDiscipline::kLocked;
    EXPECT_TRUE(GroundTruth::pairsOf(locked).empty());
}

TEST(OracleGenerator, PlantedSitesReallyRaceInTheMachine)
{
    // Ground truth must describe the execution, not just the listing:
    // every racy address is touched by >= 2 threads with at least one
    // write, through exactly the truth's load/store instructions.
    GeneratorConfig cfg;
    cfg.seed = testutil::testSeed(7);
    PRORACE_SEED_TRACE(cfg.seed);
    cfg.items = 40;
    const GeneratedWorkload gw = generate(cfg);

    vm::MachineConfig mc;
    mc.seed = 3;
    mc.record_memory_log = true;
    vm::Machine m(*gw.workload.program, mc);
    gw.workload.setup(m);
    ASSERT_EQ(m.run(), vm::RunStatus::kFinished);

    for (const SiteTruth &site : gw.truth.sites) {
        std::set<uint32_t> tids, insns;
        bool wrote = false;
        for (const auto &e : m.memoryLog()) {
            if (e.addr < site.addr || e.addr >= site.addr + site.width)
                continue;
            if (e.insn_index != site.load_insn &&
                e.insn_index != site.store_insn)
                continue;
            tids.insert(e.tid);
            insns.insert(e.insn_index);
            wrote = wrote || e.is_write;
        }
        EXPECT_GE(tids.size(), 2u) << site.symbol;
        EXPECT_TRUE(wrote) << site.symbol;
        EXPECT_TRUE(insns.count(site.store_insn)) << site.symbol;
    }
    EXPECT_EQ(gw.workload.bugs.size(), cfg.racy_sites);
}

TEST(OracleScorer, JoinsHandBuiltSetsExactly)
{
    GroundTruth truth;
    truth.racy_pairs = {{1, 5}, {5, 5}, {8, 9}};

    detect::RaceReport report;
    const auto add = [&report](uint32_t a, uint32_t b) {
        detect::DataRace race;
        race.prior.insn_index = a;
        race.current.insn_index = b;
        report.add(race);
    };
    add(5, 1);  // planted (normalizes to (1,5))
    add(5, 5);  // planted
    add(2, 3);  // spurious
    add(3, 2);  // duplicate of the spurious pair, must dedup

    const OracleScore score = scoreReport(truth, report);
    EXPECT_EQ(score.truth_pairs, 3u);
    EXPECT_EQ(score.detected_pairs, 2u);
    EXPECT_EQ(score.reported_pairs, 3u);
    EXPECT_EQ(score.false_positives, 1u);
    EXPECT_EQ(score.missed, (RacePairSet{{8, 9}}));
    EXPECT_EQ(score.spurious, (RacePairSet{{2, 3}}));
    EXPECT_DOUBLE_EQ(score.recall(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(score.precision(), 2.0 / 3.0);
}

TEST(OracleScorer, EmptyEdgeCases)
{
    const OracleScore empty = scoreReport({}, detect::RaceReport{});
    EXPECT_DOUBLE_EQ(empty.recall(), 1.0);
    EXPECT_DOUBLE_EQ(empty.precision(), 1.0);

    ScoreAccumulator acc;
    EXPECT_DOUBLE_EQ(acc.recall(), 1.0);
    acc.add(empty);
    EXPECT_EQ(acc.runs, 1u);
    EXPECT_DOUBLE_EQ(acc.precision(), 1.0);
}

TEST(OracleEndToEnd, FullRecallAndPrecisionAtPeriodOne)
{
    // Period 1 samples every access: the pipeline must find every
    // planted pair and nothing else on small workloads.
    for (uint64_t seed : testutil::testSeeds({11ull, 23ull})) {
        PRORACE_SEED_TRACE(seed);
        GeneratorConfig cfg;
        cfg.seed = seed;
        cfg.items = 50;
        const GeneratedWorkload gw = generate(cfg);
        auto pc = core::proRaceConfig(1, 5, gw.workload.pt_filter);
        auto result =
            core::runPipeline(*gw.workload.program, gw.workload.setup, pc);
        const OracleScore score = scoreReport(gw.truth,
                                              result.offline.report);
        EXPECT_DOUBLE_EQ(score.recall(), 1.0) << gw.workload.name;
        EXPECT_EQ(score.false_positives, 0u) << gw.workload.name;
    }
}

TEST(OracleEndToEnd, StandardBatteryIsDiverseAndWellFormed)
{
    const auto battery = standardBattery(500, 6);
    ASSERT_EQ(battery.size(), 6u);
    std::set<unsigned> thread_counts;
    for (const GeneratorConfig &cfg : battery) {
        thread_counts.insert(cfg.threads);
        const GeneratedWorkload gw = generate(cfg);
        EXPECT_FALSE(gw.truth.racy_pairs.empty()) << gw.workload.name;
        EXPECT_GT(gw.workload.program->size(), 0u);
    }
    EXPECT_GE(thread_counts.size(), 3u)
        << "battery should vary thread counts";
}

} // namespace
} // namespace prorace::oracle

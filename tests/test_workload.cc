/**
 * @file
 * Tests for the workload suites: every subject builds and runs to
 * completion, PT filters exclude library code, racy bugs really race,
 * and clean workloads really don't.
 */

#include <gtest/gtest.h>

#include "baseline/racez.hh"
#include "core/pipeline.hh"
#include "workload/apps.hh"
#include "workload/archetypes.hh"
#include "workload/racybugs.hh"
#include "workload/registry.hh"

#include "testutil.hh"

namespace prorace::workload {
namespace {

vm::RunStatus
runOnce(const Workload &w, uint64_t seed = 1,
        vm::Machine **out_machine = nullptr)
{
    static vm::Machine *last = nullptr;
    delete last;
    vm::MachineConfig cfg;
    cfg.seed = seed;
    last = new vm::Machine(*w.program, cfg);
    w.setup(*last);
    const vm::RunStatus status = last->run();
    if (out_machine)
        *out_machine = last;
    return status;
}

TEST(Workloads, AllParsecModelsRunToCompletion)
{
    for (const Workload &w : parsecWorkloads(0.15)) {
        EXPECT_EQ(runOnce(w), vm::RunStatus::kFinished) << w.name;
    }
}

TEST(Workloads, AllRealAppModelsRunToCompletion)
{
    for (const Workload &w : realAppWorkloads(0.15)) {
        EXPECT_EQ(runOnce(w), vm::RunStatus::kFinished) << w.name;
    }
}

TEST(Workloads, AllRacyBugsRunToCompletion)
{
    for (const Workload &w : racyBugWorkloads(0.15)) {
        EXPECT_EQ(runOnce(w), vm::RunStatus::kFinished) << w.name;
        ASSERT_EQ(w.bugs.size(), 1u) << w.name;
        EXPECT_FALSE(w.bugs[0].racy_insns.empty()) << w.name;
    }
}

TEST(Workloads, StreamingSweepGrowsItsFootprint)
{
    // kvchurn advances its sweep window per item: the set of distinct
    // granules touched must be far larger than one fixed window
    // (threads x sweep_elems = 96 at any scale), and a longer run must
    // touch more than a shorter one.
    auto footprint = [](double scale) {
        Workload w = streamingWorkloads(scale).front();
        vm::MachineConfig cfg;
        cfg.seed = 2;
        cfg.record_memory_log = true;
        vm::Machine m(*w.program, cfg);
        w.setup(m);
        EXPECT_EQ(m.run(), vm::RunStatus::kFinished) << w.name;
        std::set<uint64_t> granules;
        for (const auto &e : m.memoryLog())
            granules.insert(e.addr & ~7ull);
        return granules.size();
    };
    const size_t small = footprint(0.1);
    const size_t large = footprint(0.3);
    EXPECT_GT(small, 500u);
    EXPECT_GT(large, small * 2);
}

TEST(Workloads, DeterministicPerSeed)
{
    Workload w = makeRacyBug("pfscan", 0.2);
    vm::Machine *a = nullptr;
    runOnce(w, 5, &a);
    const uint64_t insns_a = a->totalInstructions();
    vm::Machine *b = nullptr;
    runOnce(w, 5, &b);
    EXPECT_EQ(insns_a, b->totalInstructions());
}

TEST(Workloads, TableOneThreadCounts)
{
    // Table 1: cherokee runs 38 threads, mysql 20, memcached 5.
    std::map<std::string, unsigned> expect{
        {"cherokee", 38}, {"mysql", 20}, {"memcached", 5}, {"apache", 4}};
    for (const Workload &w : realAppWorkloads(0.05)) {
        auto it = expect.find(w.name);
        if (it == expect.end())
            continue;
        vm::Machine *m = nullptr;
        runOnce(w, 1, &m);
        EXPECT_EQ(m->numThreads(), it->second + 1) // workers + main
            << w.name;
    }
}

TEST(Workloads, PtFilterExcludesLibraryCode)
{
    Workload w = makeRacyBug("pfscan", 0.2);
    bool found_lib = false;
    for (const asmkit::Function &fn : w.program->functions()) {
        if (fn.name.rfind("lib_", 0) == 0) {
            found_lib = true;
            for (uint32_t i = fn.begin; i < fn.end; ++i) {
                EXPECT_FALSE(w.pt_filter.contains(i))
                    << fn.name << " insn " << i;
            }
        } else {
            for (uint32_t i = fn.begin; i < fn.end; ++i) {
                EXPECT_TRUE(w.pt_filter.contains(i))
                    << fn.name << " insn " << i;
            }
        }
    }
    EXPECT_TRUE(found_lib) << "workloads must exercise library gaps";
}

TEST(Workloads, RacyInsnsReallyTouchTheRacyVariable)
{
    for (const Workload &w : racyBugWorkloads(0.1)) {
        const RacyBug &bug = w.bugs[0];
        vm::MachineConfig cfg;
        cfg.seed = 3;
        cfg.record_memory_log = true;
        vm::Machine m(*w.program, cfg);
        w.setup(m);
        m.run();
        std::set<uint32_t> hit_insns;
        std::set<uint32_t> hit_tids;
        for (const auto &e : m.memoryLog()) {
            if (e.addr >= bug.racy_addr &&
                e.addr < bug.racy_addr + bug.racy_size) {
                hit_insns.insert(e.insn_index);
                hit_tids.insert(e.tid);
            }
        }
        for (uint32_t insn : bug.racy_insns)
            EXPECT_TRUE(hit_insns.count(insn)) << w.name << " #" << insn;
        EXPECT_GE(hit_tids.size(), 2u)
            << w.name << ": racy variable must be touched by >1 thread";
    }
}

TEST(Workloads, AddressKindsMatchTableTwo)
{
    std::map<std::string, AddressKind> expect{
        {"pbzip2-0.9.5", AddressKind::kPcRelative},
        {"pfscan", AddressKind::kPcRelative},
        {"aget-bug2", AddressKind::kPcRelative},
        {"apache-25520", AddressKind::kRegisterIndirect},
        {"cherokee-0.9.2", AddressKind::kRegisterIndirect},
        {"mysql-3596", AddressKind::kMemoryIndirect},
        {"apache-21287", AddressKind::kMemoryIndirect},
    };
    for (const auto &[id, kind] : expect) {
        Workload w = makeRacyBug(id, 0.1);
        EXPECT_EQ(w.bugs[0].kind, kind) << id;
    }
    EXPECT_STREQ(addressKindName(AddressKind::kPcRelative), "pc relative");
}

TEST(Workloads, RegistryFindsEverySuite)
{
    const auto names = allWorkloadNames();
    EXPECT_EQ(names.size(), 13u + 8u + 1u + 5u + 12u);
    for (const std::string &name : names)
        EXPECT_TRUE(findWorkload(name, 0.05).has_value()) << name;
    EXPECT_FALSE(findWorkload("no-such-app").has_value());
}

TEST(Workloads, ArchetypesRunToCompletion)
{
    for (const std::string &name : archetypeNames()) {
        const Workload w = makeArchetype(name, 0.2);
        EXPECT_EQ(runOnce(w), vm::RunStatus::kFinished) << name;
        EXPECT_EQ(w.name, name);
    }
}

TEST(Workloads, ArchetypesAreDeterministicPerSeed)
{
    for (const std::string &name : archetypeNames()) {
        const Workload w = makeArchetype(name, 0.2);
        vm::Machine *a = nullptr;
        runOnce(w, 7, &a);
        const uint64_t insns_a = a->totalInstructions();
        vm::Machine *b = nullptr;
        runOnce(w, 7, &b);
        EXPECT_EQ(insns_a, b->totalInstructions()) << name;
    }
}

TEST(Workloads, MpmcRacyBugsReallyTouchSharedMemory)
{
    const Workload w = makeMpmcQueue(4, 12, /*racy_publish=*/true);
    ASSERT_EQ(w.bugs.size(), 2u);
    vm::MachineConfig cfg;
    cfg.seed = 3;
    cfg.record_memory_log = true;
    vm::Machine m(*w.program, cfg);
    w.setup(m);
    ASSERT_EQ(m.run(), vm::RunStatus::kFinished);
    // Every racy insn retires, and the ring/flag cells see >= 2 threads.
    std::set<uint32_t> insns;
    std::map<uint64_t, std::set<uint32_t>> tids_by_addr;
    for (const auto &e : m.memoryLog()) {
        insns.insert(e.insn_index);
        tids_by_addr[e.addr].insert(e.tid);
    }
    size_t cross_thread_cells = 0;
    for (const auto &[addr, tids] : tids_by_addr)
        cross_thread_cells += tids.size() >= 2;
    EXPECT_GT(cross_thread_cells, 0u);
    for (const RacyBug &bug : w.bugs)
        for (uint32_t insn : bug.racy_insns)
            EXPECT_TRUE(insns.count(insn)) << bug.id << " #" << insn;
}

TEST(Pipeline, CleanArchetypesProduceNoRaces)
{
    // The strongest end-to-end check of the new happens-before rules:
    // dense sampling over rwlock, semaphore, spinlock, and rel/acq
    // atomic edges must yield a completely empty report.
    for (const char *name : {"mpmc-queue", "rcu-table", "event-loop"}) {
        const Workload w = makeArchetype(name, 0.3);
        auto cfg = core::proRaceConfig(1, 9, w.pt_filter);
        auto result = core::runPipeline(*w.program, w.setup, cfg);
        EXPECT_TRUE(result.offline.report.empty())
            << name << ":\n"
            << result.offline.report.format(w.program.get());
    }
}

TEST(Pipeline, MpmcBrokenPublicationDetectedAtPeriodOne)
{
    const Workload w = makeArchetype("mpmc-queue-racy", 0.3);
    ASSERT_EQ(w.bugs.size(), 2u);
    for (uint64_t seed : testutil::testSeeds({4ull, 5ull})) {
        PRORACE_SEED_TRACE(seed);
        auto cfg = core::proRaceConfig(1, seed, w.pt_filter);
        auto result = core::runPipeline(*w.program, w.setup, cfg);
        for (const RacyBug &bug : w.bugs) {
            EXPECT_TRUE(bugDetected(bug, result.offline.report))
                << bug.id << " seed " << seed;
        }
    }
}

TEST(Pipeline, ProRaceDetectsAPcRelativeBugReliably)
{
    Workload w = makeRacyBug("pfscan", 0.5);
    for (uint64_t seed : testutil::testSeeds({1ull, 2ull, 3ull})) {
        PRORACE_SEED_TRACE(seed);
        auto cfg = core::proRaceConfig(1000, seed, w.pt_filter);
        auto result = core::runPipeline(*w.program, w.setup, cfg);
        EXPECT_TRUE(bugDetected(w.bugs[0], result.offline.report))
            << "seed " << seed;
    }
}

TEST(Pipeline, RaceZMissesThePcRelativeBugAtSparsePeriods)
{
    // RaceZ needs a sample inside the racy basic block; ProRace only
    // needs the PT path (paper §7.4).
    Workload w = makeRacyBug("pfscan", 0.5);
    int racez_hits = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        auto cfg = baseline::raceZConfig(10000, seed);
        auto result = core::runPipeline(*w.program, w.setup, cfg);
        racez_hits += bugDetected(w.bugs[0], result.offline.report);
    }
    EXPECT_LT(racez_hits, 3) << "RaceZ should miss most sparse traces";
}

TEST(Pipeline, CleanWorkloadsProduceNoRaces)
{
    for (const char *name : {"blackscholes", "streamcluster", "apache"}) {
        auto w = findWorkload(name, 0.1);
        ASSERT_TRUE(w.has_value());
        auto cfg = core::proRaceConfig(200, 11, w->pt_filter);
        auto result = core::runPipeline(*w->program, w->setup, cfg);
        EXPECT_TRUE(result.offline.report.empty())
            << name << ":\n"
            << result.offline.report.format(w->program.get());
    }
}

TEST(Pipeline, DetectionImprovesWithDenserSampling)
{
    Workload w = makeRacyBug("mysql-644", 1.0);
    int dense = 0, sparse = 0;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        auto d = core::runPipeline(
            *w.program, w.setup,
            core::proRaceConfig(100, seed, w.pt_filter));
        dense += bugDetected(w.bugs[0], d.offline.report);
        auto s = core::runPipeline(
            *w.program, w.setup,
            core::proRaceConfig(10000, seed, w.pt_filter));
        sparse += bugDetected(w.bugs[0], s.offline.report);
    }
    EXPECT_GT(dense, sparse);
    EXPECT_EQ(dense, 5);
}

} // namespace
} // namespace prorace::workload

/**
 * @file
 * Tests for the offline reconstruction pipeline: alignment, forward and
 * backward replay, and end-to-end race detection.
 *
 * The central property: every reconstructed access must be *correct* —
 * it must match the oracle access the machine actually performed at
 * that exact path position.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/offline.hh"
#include "core/session.hh"
#include "replay/align.hh"
#include "replay/replayer.hh"
#include "testutil.hh"

namespace prorace::replay {
namespace {

using testutil::makeBranchyProgram;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;

/** Everything a reconstruction test needs from one traced run. */
struct Fixture {
    vm::MachineConfig mcfg;
    driver::TraceConfig tcfg;
    trace::RunTrace trace;
    std::map<std::pair<uint32_t, uint64_t>,
             std::vector<vm::MemoryLogEntry>> oracle; ///< (tid,pos) -> accs
    std::map<uint32_t, pmu::ThreadPath> paths;
    std::map<uint32_t, ThreadAlignment> alignments;
    AlignStats align_stats;

    Fixture(const asmkit::Program &program, uint64_t period,
            uint64_t seed = 3)
    {
        mcfg.seed = seed;
        mcfg.record_memory_log = true;
        tcfg.pebs_period = period;
        tcfg.seed = seed + 100;

        vm::Machine machine(program, mcfg);
        driver::TracingSession tracing(tcfg, mcfg.num_cores);
        machine.setObserver(&tracing);
        machine.addThread("main");
        machine.run();
        trace = tracing.finish();
        for (uint32_t tid = 0; tid < machine.numThreads(); ++tid)
            trace.meta.threads.push_back({tid, machine.thread(tid).entry_ip});
        for (const auto &e : machine.memoryLog())
            oracle[{e.tid, e.retire_index}].push_back(e);

        paths = pmu::decodePt(program, pmu::PtFilter::all(), trace);
        alignments = alignTrace(program, paths, trace, &align_stats);
    }
};

/** Assert every access matches the oracle at its claimed position. */
void
verifyAgainstOracle(const Fixture &fx,
                    const std::vector<ReconstructedAccess> &accesses)
{
    for (const auto &acc : accesses) {
        auto it = fx.oracle.find({acc.tid, acc.position});
        ASSERT_NE(it, fx.oracle.end())
            << "no oracle access at tid " << acc.tid << " pos "
            << acc.position << " insn #" << acc.insn_index << " ("
            << detect::accessOriginName(acc.origin) << ")";
        bool matched = false;
        for (const auto &e : it->second) {
            if (e.insn_index == acc.insn_index && e.addr == acc.addr &&
                e.is_write == acc.is_write && e.width == acc.width) {
                matched = true;
            }
        }
        EXPECT_TRUE(matched)
            << "reconstructed access mismatches oracle: tid " << acc.tid
            << " pos " << acc.position << " insn #" << acc.insn_index
            << " addr 0x" << std::hex << acc.addr << std::dec << " ("
            << detect::accessOriginName(acc.origin) << ")";
    }
}

TEST(Align, SamplesLandOnCorrectPathPositions)
{
    asmkit::Program program = makeBranchyProgram(120);
    Fixture fx(program, 7);
    ASSERT_GT(fx.align_stats.samples_matched, 20u);
    // Matching is near-total (tight loops plus anchors plus register
    // verification).
    EXPECT_LT(fx.align_stats.samples_unmatched,
              fx.align_stats.samples_matched / 10 + 2);

    for (const auto &[tid, align] : fx.alignments) {
        const auto &path = fx.paths.at(tid);
        for (const AlignedSample &s : align.samples) {
            const trace::PebsRecord &rec = fx.trace.pebs[s.record_index];
            ASSERT_LT(s.position, path.insns.size());
            EXPECT_EQ(path.insns[s.position], rec.insn_index);
            // The oracle access at this exact position must match the
            // record's address: the match is position-exact, not merely
            // instruction-exact.
            auto it = fx.oracle.find({tid, s.position});
            ASSERT_NE(it, fx.oracle.end());
            bool ok = false;
            for (const auto &e : it->second)
                ok |= e.addr == rec.addr && e.is_write == rec.is_write;
            EXPECT_TRUE(ok) << "sample matched to wrong loop iteration";
        }
    }
}

TEST(Align, TscInterpolationIsMonotone)
{
    asmkit::Program program = makeBranchyProgram(80);
    Fixture fx(program, 13);
    for (const auto &[tid, align] : fx.alignments) {
        uint64_t last = 0;
        const auto &path = fx.paths.at(tid);
        for (uint64_t pos = 0; pos < path.insns.size();
             pos += 1 + path.insns.size() / 200) {
            const uint64_t t = align.tscAt(pos);
            EXPECT_GE(t, last);
            last = t;
        }
    }
}

TEST(Replayer, ReconstructionMatchesOracleExactly)
{
    asmkit::Program program = makeBranchyProgram(150);
    for (uint64_t seed : testutil::testSeeds({3ull, 11ull, 29ull})) {
        PRORACE_SEED_TRACE(seed);
        Fixture fx(program, 23, seed);
        Replayer replayer(program, {});
        auto accesses = replayer.replayAll(fx.paths, fx.alignments,
                                           fx.trace);
        ASSERT_GT(accesses.size(), 100u);
        verifyAgainstOracle(fx, accesses);
    }
}

TEST(Replayer, RecoveryRatioIsSubstantial)
{
    asmkit::Program program = makeBranchyProgram(200);
    Fixture fx(program, 50);
    Replayer replayer(program, {});
    auto accesses = replayer.replayAll(fx.paths, fx.alignments, fx.trace);
    (void)accesses;
    const ReplayStats &st = replayer.stats();
    ASSERT_GT(st.sampled, 10u);
    EXPECT_GT(st.recoveryRatio(), 10.0)
        << "forward+backward replay should multiply coverage";
}

TEST(Replayer, ModesFormAStrictHierarchy)
{
    asmkit::Program program = makeBranchyProgram(200);
    Fixture fx(program, 50);

    auto run_mode = [&](ReplayMode mode) {
        ReplayConfig cfg;
        cfg.mode = mode;
        Replayer replayer(program, cfg);
        auto accesses = replayer.replayAll(fx.paths, fx.alignments,
                                           fx.trace);
        // Basic-block mode uses block-relative positions, so the
        // position-exact oracle check only applies to the PT modes.
        if (mode != ReplayMode::kBasicBlock)
            verifyAgainstOracle(fx, accesses);
        return replayer.stats().totalAccesses();
    };

    const uint64_t bb = run_mode(ReplayMode::kBasicBlock);
    const uint64_t fwd = run_mode(ReplayMode::kForwardOnly);
    const uint64_t both = run_mode(ReplayMode::kForwardBackward);
    EXPECT_GT(fwd, bb) << "PT-guided forward replay beats basic-block";
    EXPECT_GE(both, fwd);
    EXPECT_GT(both, bb * 2);
}

TEST(Replayer, BackwardReplayRecoversPointerChase)
{
    // The paper's Fig. 5 situation: a pointer loaded from (unavailable)
    // memory is dereferenced; forward replay cannot compute the second
    // address, but the next sample's registers restore it backwards.
    asmkit::ProgramBuilder b;
    b.global("slots", 64 * 8);
    b.globalU64("sink", 0);
    b.label("main");
    b.movri(Reg::rcx, 0);
    b.lea(Reg::r15, b.symRef("slots"));
    b.label("loop");
    // rsi = slots[rcx % 8]; rdx = [rsi + 8]  (pointer chase)
    b.movrr(Reg::rax, Reg::rcx);
    b.aluri(AluOp::kAnd, Reg::rax, 7);
    b.load(Reg::rsi, MemOperand::baseIndex(Reg::r15, Reg::rax, 8)); // A
    b.load(Reg::rdx, MemOperand::baseDisp(Reg::rsi, 8));            // B
    b.store(b.symRef("sink"), Reg::rdx);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 4000);
    b.jcc(CondCode::kLt, "loop");
    b.halt();
    asmkit::Program program = b.build();

    // Initialize slots with self-referential pointers so load B has a
    // meaningful address.
    vm::MachineConfig mcfg;
    mcfg.seed = 7;
    mcfg.record_memory_log = true;
    driver::TraceConfig tcfg;
    tcfg.pebs_period = 101;

    vm::Machine machine(program, mcfg);
    const uint64_t slots = program.symbol("slots").addr;
    for (int i = 0; i < 8; ++i)
        machine.memory().write(slots + 8 * i, slots + 256 + 32 * i, 8);
    driver::TracingSession tracing(tcfg, mcfg.num_cores);
    machine.setObserver(&tracing);
    machine.addThread("main");
    machine.run();
    trace::RunTrace trace = tracing.finish();
    trace.meta.threads.push_back({0, machine.thread(0).entry_ip});

    auto paths = pmu::decodePt(program, pmu::PtFilter::all(), trace);
    auto alignments = alignTrace(program, paths, trace);

    auto count_b = [&](ReplayMode mode) {
        ReplayConfig cfg;
        cfg.mode = mode;
        Replayer replayer(program, cfg);
        auto accesses = replayer.replayAll(paths, alignments, trace);
        const uint32_t insn_b = 5; // load B above (0-based emission order)
        uint64_t n = 0;
        for (const auto &a : accesses) {
            if (a.insn_index == insn_b &&
                a.origin == detect::AccessOrigin::kBackward) {
                ++n;
            }
        }
        return n;
    };

    EXPECT_EQ(count_b(ReplayMode::kForwardOnly), 0u);
    EXPECT_GT(count_b(ReplayMode::kForwardBackward), 10u)
        << "backward propagation must restore the chased pointer";

    // And all reconstructed addresses must still be correct.
    std::map<std::pair<uint32_t, uint64_t>,
             std::vector<vm::MemoryLogEntry>> oracle;
    for (const auto &e : machine.memoryLog())
        oracle[{e.tid, e.retire_index}].push_back(e);
    ReplayConfig cfg;
    Replayer replayer(program, cfg);
    auto accesses = replayer.replayAll(paths, alignments, trace);
    for (const auto &acc : accesses) {
        auto it = oracle.find({acc.tid, acc.position});
        ASSERT_NE(it, oracle.end());
        bool matched = false;
        for (const auto &e : it->second) {
            matched |= e.insn_index == acc.insn_index &&
                e.addr == acc.addr && e.is_write == acc.is_write;
        }
        EXPECT_TRUE(matched) << "backward-recovered address is wrong at "
                             << acc.position;
    }
}

TEST(Replayer, PcRelativeRecoveredWithoutAnySample)
{
    // PC-relative accesses need only the PT path (paper §7.4): even with
    // (almost) no samples the extended trace contains them.
    asmkit::ProgramBuilder b;
    b.globalU64("flag", 0);
    b.label("main");
    b.movri(Reg::rcx, 0);
    b.label("loop");
    b.load(Reg::rax, b.symRef("flag"));   // pc-relative load
    b.addri(Reg::rax, 1);
    b.store(b.symRef("flag"), Reg::rax);  // pc-relative store
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 500);
    b.jcc(CondCode::kLt, "loop");
    b.halt();
    asmkit::Program program = b.build();

    vm::MachineConfig mcfg;
    mcfg.seed = 5;
    driver::TraceConfig tcfg;
    tcfg.pebs_period = 1'000'000; // effectively no samples

    vm::Machine machine(program, mcfg);
    driver::TracingSession tracing(tcfg, mcfg.num_cores);
    machine.setObserver(&tracing);
    machine.addThread("main");
    machine.run();
    trace::RunTrace trace = tracing.finish();
    trace.meta.threads.push_back({0, machine.thread(0).entry_ip});

    auto paths = pmu::decodePt(program, pmu::PtFilter::all(), trace);
    auto alignments = alignTrace(program, paths, trace);
    Replayer replayer(program, {});
    auto accesses = replayer.replayAll(paths, alignments, trace);

    uint64_t pcrel = 0;
    for (const auto &a : accesses)
        pcrel += a.origin == detect::AccessOrigin::kPcRelative;
    EXPECT_GE(pcrel, 1000u) << "one load + one store per iteration";
}

TEST(Offline, DetectsARealRaceEndToEnd)
{
    // Two workers increment a shared counter without a lock; one worker
    // updates a locked counter too (so there is sync traffic).
    asmkit::ProgramBuilder b;
    b.globalU64("shared", 0);
    b.globalU64("safe", 0);
    b.global("mtx", 8);
    b.label("main");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "worker", Reg::r12);
    b.spawn(Reg::r9, "worker", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.halt();
    b.beginFunction("worker");
    b.movri(Reg::rcx, 0);
    b.label("loop");
    uint32_t racy_load = b.load(Reg::rax, b.symRef("shared"));
    b.addri(Reg::rax, 1);
    uint32_t racy_store = b.store(b.symRef("shared"), Reg::rax);
    b.lock(b.symRef("mtx"));
    b.load(Reg::rbx, b.symRef("safe"));
    b.addri(Reg::rbx, 1);
    b.store(b.symRef("safe"), Reg::rbx);
    b.unlock(b.symRef("mtx"));
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 300);
    b.jcc(CondCode::kLt, "loop");
    b.halt();
    asmkit::Program program = b.build();

    core::SessionOptions opt;
    opt.machine.seed = 9;
    opt.run_baseline = false;
    opt.tracing.pebs_period = 100;
    core::RunArtifacts run = core::Session::run(
        program, [](vm::Machine &m) { m.addThread("main"); }, opt);

    core::OfflineAnalyzer analyzer(program, {});
    core::OfflineResult result = analyzer.analyze(run.trace);

    EXPECT_FALSE(result.report.empty()) << "the race must be detected";
    const uint64_t shared = program.symbol("shared").addr;
    EXPECT_TRUE(result.report.containsAddressRange(shared, 8));
    bool hits_site = result.report.containsInsn(racy_load) ||
        result.report.containsInsn(racy_store);
    EXPECT_TRUE(hits_site) << "report should name the racy instructions";
    // The locked counter must NOT be reported.
    EXPECT_FALSE(result.report.containsAddressRange(
        program.symbol("safe").addr, 8))
        << "lock-protected accesses misreported";
}

TEST(Offline, NoFalsePositivesOnSynchronizedProgram)
{
    // A fully synchronized program must produce an empty report for
    // every seed (FastTrack precision: no false positives).
    asmkit::Program program = makeBranchyProgram(100);
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        core::SessionOptions opt;
        opt.machine.seed = seed;
        opt.run_baseline = false;
        opt.tracing.pebs_period = 20;
        core::RunArtifacts run = core::Session::run(
            program, [](vm::Machine &m) { m.addThread("main"); }, opt);
        core::OfflineAnalyzer analyzer(program, {});
        core::OfflineResult result = analyzer.analyze(run.trace);
        EXPECT_TRUE(result.report.empty())
            << "false positive with seed " << seed << ":\n"
            << result.report.format(&program);
    }
}

TEST(Offline, TimingBreakdownIsPopulated)
{
    asmkit::Program program = makeBranchyProgram(150);
    core::SessionOptions opt;
    opt.machine.seed = 4;
    opt.run_baseline = false;
    opt.tracing.pebs_period = 30;
    core::RunArtifacts run = core::Session::run(
        program, [](vm::Machine &m) { m.addThread("main"); }, opt);
    core::OfflineAnalyzer analyzer(program, {});
    core::OfflineResult result = analyzer.analyze(run.trace);
    EXPECT_GT(result.decode_stats.packets, 0u);
    EXPECT_GT(result.extended_trace_events, 0u);
    EXPECT_GT(result.totalSeconds(), 0.0);
    EXPECT_GT(result.detect_stats.reads + result.detect_stats.writes, 0u);
}

} // namespace
} // namespace prorace::replay

/**
 * @file
 * Unit tests for the assembler: labels, fixups, globals, basic blocks.
 */

#include <gtest/gtest.h>

#include "asmkit/builder.hh"
#include "asmkit/layout.hh"

namespace prorace::asmkit {
namespace {

using isa::CondCode;
using isa::Op;
using isa::Reg;

TEST(Builder, ForwardAndBackwardLabelsResolve)
{
    ProgramBuilder b;
    b.label("start");
    b.movri(Reg::rax, 0);
    b.label("loop");
    b.addri(Reg::rax, 1);
    b.cmpri(Reg::rax, 10);
    b.jcc(CondCode::kLt, "loop");   // backward
    b.jmp("end");                   // forward
    b.nop();
    b.label("end");
    b.halt();
    Program p = b.build();

    EXPECT_EQ(p.labelAddr("start"), 0u);
    EXPECT_EQ(p.labelAddr("loop"), 1u);
    EXPECT_EQ(p.insnAt(3).target, p.labelAddr("loop"));
    EXPECT_EQ(p.insnAt(4).target, p.labelAddr("end"));
}

TEST(Builder, UnresolvedLabelIsFatal)
{
    ProgramBuilder b;
    b.jmp("nowhere");
    EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, DuplicateLabelIsFatal)
{
    ProgramBuilder b;
    b.label("x");
    b.nop();
    EXPECT_THROW(b.label("x"), std::runtime_error);
}

TEST(Builder, GlobalsAreAlignedAndDisjoint)
{
    ProgramBuilder b;
    const uint64_t a = b.global("a", 3);
    const uint64_t c = b.global("c", 8);
    const uint64_t d = b.global("d", 100, 64);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(c % 8, 0u);
    EXPECT_EQ(d % 64, 0u);
    EXPECT_GE(c, a + 3);
    EXPECT_GE(d, c + 8);
    EXPECT_GE(a, kGlobalBase);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.symbol("a").addr, a);
    EXPECT_EQ(p.symbol("d").size, 100u);
}

TEST(Builder, GlobalU64StoresInitBytes)
{
    ProgramBuilder b;
    b.globalU64("v", 0x1122334455667788ull);
    b.halt();
    Program p = b.build();
    const auto &init = p.symbol("v").init;
    ASSERT_EQ(init.size(), 8u);
    EXPECT_EQ(init[0], 0x88);
    EXPECT_EQ(init[7], 0x11);
}

TEST(Builder, SymRefIsRipRelative)
{
    ProgramBuilder b;
    const uint64_t addr = b.global("flag", 8);
    auto mem = b.symRef("flag", 4);
    EXPECT_TRUE(mem.rip_relative);
    EXPECT_EQ(static_cast<uint64_t>(mem.disp), addr + 4);
}

TEST(Builder, FunctionsRecordCodeRanges)
{
    ProgramBuilder b;
    b.beginFunction("f");
    b.nop();
    b.ret();
    b.beginFunction("g");
    b.movri(Reg::rax, 1);
    b.halt();
    Program p = b.build();
    ASSERT_EQ(p.functions().size(), 2u);
    EXPECT_EQ(p.functions()[0].name, "f");
    EXPECT_EQ(p.functions()[0].begin, 0u);
    EXPECT_EQ(p.functions()[0].end, 2u);
    EXPECT_EQ(p.functions()[1].begin, 2u);
    EXPECT_EQ(p.functions()[1].end, 4u);
}

TEST(Program, BasicBlocksSplitAtBranchesAndTargets)
{
    ProgramBuilder b;
    b.movri(Reg::rax, 0);             // 0  block A
    b.label("loop");                  //    (target -> leader)
    b.addri(Reg::rax, 1);             // 1  block B
    b.cmpri(Reg::rax, 4);             // 2
    b.jcc(CondCode::kLt, "loop");     // 3  (ends block B)
    b.nop();                          // 4  block C
    b.halt();                         // 5
    Program p = b.build();

    EXPECT_EQ(p.blockOf(0), p.blockOf(0));
    EXPECT_NE(p.blockOf(0), p.blockOf(1));
    EXPECT_EQ(p.blockOf(1), p.blockOf(3));
    EXPECT_NE(p.blockOf(3), p.blockOf(4));
    const uint32_t blk = p.blockOf(2);
    EXPECT_EQ(p.blockBegin(blk), 1u);
    EXPECT_EQ(p.blockEnd(blk), 4u);
}

TEST(Program, SyncOpsEndBasicBlocks)
{
    ProgramBuilder b;
    b.global("m", 8);
    b.lock(b.symRef("m"));            // 0
    b.addri(Reg::rax, 1);             // 1
    b.unlock(b.symRef("m"));          // 2
    b.halt();                         // 3
    Program p = b.build();
    EXPECT_NE(p.blockOf(0), p.blockOf(1));
    EXPECT_NE(p.blockOf(2), p.blockOf(3));
}

TEST(Program, OutOfRangeBranchIsFatal)
{
    std::vector<isa::Insn> code;
    code.push_back({.op = Op::kJmp, .target = 99});
    EXPECT_THROW(Program(std::move(code), {}, {}, {}),
                 std::runtime_error);
}

TEST(Program, InvalidInsnIsFatal)
{
    std::vector<isa::Insn> code;
    code.push_back({.op = Op::kLoad}); // missing dst
    EXPECT_THROW(Program(std::move(code), {}, {}, {}),
                 std::runtime_error);
}

TEST(Program, SymbolCoveringFindsOwner)
{
    ProgramBuilder b;
    const uint64_t a = b.global("arr", 64);
    b.halt();
    Program p = b.build();
    EXPECT_EQ(p.symbolCovering(a + 10).value_or(""), "arr");
    EXPECT_FALSE(p.symbolCovering(a + 64).has_value());
}

TEST(Program, ListingContainsLabels)
{
    ProgramBuilder b;
    b.label("main");
    b.movri(Reg::rax, 7);
    b.halt();
    Program p = b.build();
    const std::string listing = p.listing();
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find("mov $7"), std::string::npos);
}

TEST(Layout, StackAddressesDoNotOverlapHeapOrGlobals)
{
    EXPECT_TRUE(isStackAddress(stackTopFor(0) - 8));
    EXPECT_TRUE(isStackAddress(stackTopFor(37) - 8));
    EXPECT_FALSE(isStackAddress(kHeapBase));
    EXPECT_TRUE(isHeapAddress(kHeapBase));
    EXPECT_FALSE(isHeapAddress(kGlobalBase));
    EXPECT_TRUE(isGlobalAddress(kGlobalBase));
    EXPECT_GT(stackTopFor(0) - kStackSize, stackTopFor(1));
}

} // namespace
} // namespace prorace::asmkit

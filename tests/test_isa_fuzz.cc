/**
 * @file
 * Differential fuzzing of the execution core (satellite of the oracle
 * PR): isa::semantics against the independent reference formulas,
 * whole random programs through vm::Machine against RefInterp, and
 * invertAlu round-trips — the primitive backward replay rests on.
 *
 * Iteration budgets default to >= 10k instructions per fuzzer and
 * scale up with PRORACE_FUZZ_ITERS (the CI fuzz job sets 150k). A
 * failure prints the minimized program and the seed;
 * PRORACE_TEST_SEED reruns any of these with that exact seed.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "oracle/fuzzer.hh"
#include "oracle/ref_interp.hh"

#include "testutil.hh"

namespace prorace::oracle {
namespace {

uint64_t
fuzzIters()
{
    if (const char *env = std::getenv("PRORACE_FUZZ_ITERS"))
        return std::strtoull(env, nullptr, 10);
    return 10'000;
}

FuzzOptions
optionsFor(uint64_t fallback_seed)
{
    FuzzOptions options;
    options.seed = testutil::testSeed(fallback_seed);
    options.min_instructions = fuzzIters();
    return options;
}

TEST(IsaFuzz, AluSemanticsMatchReference)
{
    const FuzzOptions options = optionsFor(1);
    PRORACE_SEED_TRACE(options.seed);
    const FuzzStats stats = fuzzAluSemantics(options);
    EXPECT_GE(stats.instructions, options.min_instructions);
    EXPECT_EQ(stats.mismatches, 0u) << stats.failure;
}

TEST(IsaFuzz, MachineForwardExecutionMatchesReference)
{
    const FuzzOptions options = optionsFor(2);
    PRORACE_SEED_TRACE(options.seed);
    const FuzzStats stats = fuzzMachineForward(options);
    EXPECT_GE(stats.instructions, options.min_instructions);
    EXPECT_GT(stats.programs, 0u);
    EXPECT_EQ(stats.mismatches, 0u) << stats.failure;
}

TEST(IsaFuzz, ReverseExecutionRoundTrips)
{
    const FuzzOptions options = optionsFor(3);
    PRORACE_SEED_TRACE(options.seed);
    const FuzzStats stats = fuzzReverseExecution(options);
    EXPECT_GE(stats.instructions, options.min_instructions);
    EXPECT_EQ(stats.mismatches, 0u) << stats.failure;
}

TEST(IsaFuzz, ReferenceInterpreterRefusesUnsupportedOps)
{
    // The reference must fail loudly on ops outside its subset, never
    // silently diverge from the machine.
    isa::Insn spawn;
    spawn.op = isa::Op::kSpawn;
    spawn.dst = isa::Reg::rax;
    RefInterp ref({spawn});
    EXPECT_EQ(ref.run(0, 10), RefStatus::kUnsupported);
    EXPECT_FALSE(ref.error().empty());

    isa::Insn nop; // falls off the end of the code: also an error
    RefInterp runoff({nop});
    EXPECT_EQ(runoff.run(0, 10), RefStatus::kUnsupported);
}

TEST(IsaFuzz, ShrinkingFindsASmallCounterexample)
{
    // Sanity-check the harness itself: a reference interpreter bug
    // would be caught and minimized. Simulated here by checking a
    // known-good run reports zero mismatches with empty failure.
    FuzzOptions options = optionsFor(99);
    PRORACE_SEED_TRACE(options.seed);
    options.min_instructions = 500;
    const FuzzStats stats = fuzzMachineForward(options);
    EXPECT_EQ(stats.mismatches, 0u) << stats.failure;
    EXPECT_TRUE(stats.failure.empty());
}

} // namespace
} // namespace prorace::oracle

/**
 * @file
 * Deterministic trace-corruption utilities for the fault-tolerance
 * tests and the fig13 degradation harness.
 *
 * Every corruption is a pure function of the input bytes and a seeded
 * support/rng stream, so a (seed, rate) pair names one exact damage
 * pattern — CI reruns the same patterns every time. The segment-aware
 * helpers parse the segment framing (unchanged from v4 through the v5
 * columnar payloads) of an *intact* trace first and
 * then damage whole segments, which is the unit production loss
 * actually comes in (a dropped aux-buffer chunk, a clipped file); the
 * raw helpers damage arbitrary bytes to exercise the resync scan.
 */

#ifndef PRORACE_TESTS_FAULT_INJECTION_HH
#define PRORACE_TESTS_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "support/log.hh"
#include "support/rng.hh"
#include "trace/trace_file.hh"

namespace prorace::fault {

/** Location of one segment (header included) in a serialized trace. */
struct SegmentSpan {
    size_t begin = 0; ///< offset of the segment magic
    size_t end = 0;   ///< one past the payload
    uint8_t kind = 0; ///< trace_file segment kind byte
};

/**
 * Walk the segment table of an *intact* v4 trace. Asserts on framing
 * that does not parse — corruption goes in after mapping, not before.
 */
inline std::vector<SegmentSpan>
mapSegments(const std::vector<uint8_t> &bytes)
{
    auto u32At = [&](size_t pos) {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(bytes[pos + i]) << (8 * i);
        return v;
    };
    auto u64At = [&](size_t pos) {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(bytes[pos + i]) << (8 * i);
        return v;
    };
    constexpr size_t kHeaderSize = 25; // magic+kind+seq+size+2 CRCs
    std::vector<SegmentSpan> spans;
    PRORACE_ASSERT(bytes.size() >= 8, "trace too small to map");
    size_t pos = 8;
    while (pos < bytes.size()) {
        PRORACE_ASSERT(bytes.size() - pos >= kHeaderSize &&
                           u32At(pos) == trace::kSegmentMagic,
                       "mapSegments over a damaged trace");
        SegmentSpan s;
        s.begin = pos;
        s.kind = bytes[pos + 4];
        const uint64_t payload_size = u64At(pos + 9);
        s.end = pos + kHeaderSize + static_cast<size_t>(payload_size);
        PRORACE_ASSERT(s.end <= bytes.size(),
                       "mapSegments segment overruns the buffer");
        spans.push_back(s);
        pos = s.end;
    }
    return spans;
}

/**
 * Corrupt each segment independently with probability @p rate by
 * flipping one random bit anywhere in it (header or payload). Returns
 * the number of segments damaged.
 */
inline size_t
corruptSegments(std::vector<uint8_t> &bytes, double rate, Rng &rng)
{
    size_t damaged = 0;
    for (const SegmentSpan &s : mapSegments(bytes)) {
        if (!rng.chance(rate))
            continue;
        const size_t byte =
            s.begin + static_cast<size_t>(rng.below(s.end - s.begin));
        bytes[byte] ^= static_cast<uint8_t>(1u << rng.below(8));
        ++damaged;
    }
    return damaged;
}

/**
 * Remove each segment entirely with probability @p rate (the
 * dropped-aux-buffer failure mode). Returns the number removed.
 */
inline size_t
dropSegments(std::vector<uint8_t> &bytes, double rate, Rng &rng)
{
    const std::vector<SegmentSpan> spans = mapSegments(bytes);
    std::vector<uint8_t> out(bytes.begin(), bytes.begin() + 8);
    size_t removed = 0;
    for (const SegmentSpan &s : spans) {
        if (rng.chance(rate)) {
            ++removed;
            continue;
        }
        out.insert(out.end(), bytes.begin() + s.begin,
                   bytes.begin() + s.end);
    }
    bytes = std::move(out);
    return removed;
}

/** Clip the trace to its first @p keep_bytes bytes. */
inline void
truncateAt(std::vector<uint8_t> &bytes, size_t keep_bytes)
{
    if (keep_bytes < bytes.size())
        bytes.resize(keep_bytes);
}

/**
 * Flip @p flips random bits anywhere past the 8-byte file header —
 * the undirected damage model that exercises the reader's magic scan
 * and the PT decoder's PSB scan together.
 */
inline void
flipRandomBits(std::vector<uint8_t> &bytes, size_t flips, Rng &rng)
{
    if (bytes.size() <= 8)
        return;
    for (size_t i = 0; i < flips; ++i) {
        const size_t byte =
            8 + static_cast<size_t>(rng.below(bytes.size() - 8));
        bytes[byte] ^= static_cast<uint8_t>(1u << rng.below(8));
    }
}

/** Flip one specific bit — directed damage for prefix-validity sweeps. */
inline void
flipBitAt(std::vector<uint8_t> &bytes, size_t offset, unsigned bit)
{
    PRORACE_ASSERT(offset < bytes.size() && bit < 8,
                   "flipBitAt out of range");
    bytes[offset] ^= static_cast<uint8_t>(1u << bit);
}

/**
 * A deterministic garbage stream (xorshift64) — what a poisoned
 * producer submits instead of a recorded trace. Same generator the
 * fleet simulator's poison tenants use, so a (size, seed) pair names
 * one exact stream.
 */
inline std::vector<uint8_t>
poisonStream(size_t size, uint64_t seed)
{
    std::vector<uint8_t> bytes(size);
    uint64_t rng = seed * 0x9e3779b97f4a7c15ull + 1;
    for (uint8_t &b : bytes) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        b = static_cast<uint8_t>(rng);
    }
    return bytes;
}

} // namespace prorace::fault

#endif // PRORACE_TESTS_FAULT_INJECTION_HH

/**
 * @file
 * Tests for the work-stealing executor subsystem: futures, task queues,
 * the executor itself (ordering-free completion, exception propagation,
 * stealing, stats), and the bounded reorder buffer's ordered commit.
 */

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/executor.hh"
#include "exec/future.hh"
#include "exec/reorder_buffer.hh"
#include "exec/task_queue.hh"

namespace prorace::exec {
namespace {

TEST(Future, DeliversValueAcrossThreads)
{
    Promise<int> promise;
    Future<int> future = promise.future();
    std::thread producer([&promise] { promise.setValue(17); });
    EXPECT_EQ(future.get(), 17);
    producer.join();
}

TEST(Future, RethrowsProducerException)
{
    Promise<int> promise;
    Future<int> future = promise.future();
    promise.setError(
        std::make_exception_ptr(std::runtime_error("boom")));
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(TaskQueue, OwnerPopsLifoThiefStealsFifo)
{
    TaskQueue<int> q;
    EXPECT_EQ(q.push(1), 1u);
    EXPECT_EQ(q.push(2), 2u);
    EXPECT_EQ(q.push(3), 3u);
    EXPECT_EQ(q.pop(), 3);   // owner takes the newest task
    EXPECT_EQ(q.steal(), 1); // thief takes the oldest
    EXPECT_EQ(q.pop(), 2);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.steal().has_value());
    EXPECT_TRUE(q.empty());
}

TEST(Executor, RunsEveryTaskExactlyOnce)
{
    constexpr int kTasks = 500;
    Executor ex(4);
    std::atomic<int> hits{0};
    std::vector<Future<int>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(ex.submit([&hits, i] {
            hits.fetch_add(1, std::memory_order_relaxed);
            return i * i;
        }));
    }
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
    EXPECT_EQ(hits.load(), kTasks);
    EXPECT_EQ(ex.stats().executed, static_cast<uint64_t>(kTasks));
}

TEST(Executor, PropagatesTaskExceptionThroughFuture)
{
    Executor ex(2);
    Future<int> bad =
        ex.submit([]() -> int { throw std::logic_error("task failed"); });
    Future<int> good = ex.submit([] { return 5; });
    EXPECT_THROW(bad.get(), std::logic_error);
    EXPECT_EQ(good.get(), 5); // one failure doesn't poison the pool
}

TEST(Executor, NestedSubmissionFromWorkers)
{
    // Tasks may submit follow-up tasks from a worker thread (but must
    // not block on them there: with every worker inside a blocking
    // parent, nobody would be left to run the children). The main
    // thread collects the child futures and joins them.
    Executor ex(3);
    std::atomic<int> leaves{0};
    std::mutex mu;
    std::vector<Future<void>> children;
    std::vector<Future<void>> roots;
    for (int i = 0; i < 8; ++i) {
        roots.push_back(ex.submit([&ex, &leaves, &mu, &children] {
            for (int j = 0; j < 8; ++j) {
                Future<void> child = ex.submit([&leaves] {
                    leaves.fetch_add(1, std::memory_order_relaxed);
                });
                std::lock_guard<std::mutex> lock(mu);
                children.push_back(std::move(child));
            }
        }));
    }
    for (auto &f : roots)
        f.get();
    for (auto &f : children)
        f.get();
    EXPECT_EQ(leaves.load(), 64);
}

TEST(Executor, ParallelForCoversRange)
{
    Executor ex(4);
    std::vector<std::atomic<int>> touched(257);
    ex.parallelFor(touched.size(), [&](uint64_t i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(Executor, StatsCountStealsUnderImbalance)
{
    // Round-robin enqueue across 4 workers with long and short tasks
    // mixed: some worker goes idle and must steal to finish early.
    Executor ex(4);
    std::atomic<int> done{0};
    constexpr int kTasks = 256;
    std::vector<Future<void>> futures;
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(ex.submit([&done, i] {
            volatile uint64_t sink = 0;
            const int spin = (i % 4 == 0) ? 20000 : 50;
            for (int j = 0; j < spin; ++j)
                sink += static_cast<uint64_t>(j);
            done.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    for (auto &f : futures)
        f.get();
    const ExecutorStats stats = ex.stats();
    EXPECT_EQ(done.load(), kTasks);
    EXPECT_EQ(stats.executed, static_cast<uint64_t>(kTasks));
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kTasks));
    EXPECT_GE(stats.max_queue_depth, 1u);
    EXPECT_EQ(stats.task_seconds.count(), static_cast<size_t>(kTasks));
    // Steals can legitimately be zero on a single-core box; just check
    // the counter is consistent.
    EXPECT_LE(stats.stolen, stats.executed);
}

TEST(Executor, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        Executor ex(2);
        for (int i = 0; i < 100; ++i) {
            ex.submit([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // No get(): shutdown must still run everything already queued.
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ReorderBuffer, ReordersOutOfOrderCommits)
{
    ReorderBuffer<int> rob(8);
    std::thread committer([&rob] {
        rob.commit(2, 20);
        rob.commit(0, 0);
        rob.commit(3, 30);
        rob.commit(1, 10);
    });
    for (int seq = 0; seq < 4; ++seq)
        EXPECT_EQ(rob.pop(), seq * 10);
    committer.join();
}

TEST(ReorderBuffer, BlocksCommitsBeyondCapacity)
{
    ReorderBuffer<int> rob(2);
    rob.commit(0, 0);
    rob.commit(1, 1);
    std::atomic<bool> third_done{false};
    std::thread committer([&rob, &third_done] {
        rob.commit(2, 2); // must wait until seq 0 is popped
        third_done.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(third_done.load());
    EXPECT_EQ(rob.pop(), 0);
    EXPECT_EQ(rob.pop(), 1);
    EXPECT_EQ(rob.pop(), 2);
    committer.join();
    EXPECT_TRUE(third_done.load());
    EXPECT_EQ(rob.frontier(), 3u);
    EXPECT_EQ(rob.held(), 0u);
}

TEST(ReorderBuffer, ManyProducersOneConsumerStaysOrdered)
{
    constexpr uint64_t kItems = 2000;
    Executor ex(4);
    ReorderBuffer<uint64_t> rob(16);
    uint64_t submitted = 0;
    auto submit_one = [&] {
        const uint64_t seq = submitted++;
        ex.submit([&rob, seq] { rob.commit(seq, seq * 7); });
    };
    while (submitted < 16)
        submit_one();
    for (uint64_t seq = 0; seq < kItems; ++seq) {
        EXPECT_EQ(rob.pop(), seq * 7);
        if (submitted < kItems)
            submit_one();
    }
}

} // namespace
} // namespace prorace::exec

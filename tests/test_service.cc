/**
 * @file
 * Tests for the streaming multi-tenant analysis service: the
 * incremental detector's report identity with the one-shot detector,
 * epoch-GC soundness (nothing swept ever resurrects as a spurious
 * race), ingest backpressure bounds, the resumable trace cursor, and
 * the service's aggregation/deduplication layers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/pipeline.hh"
#include "detect/incremental.hh"
#include "oracle/generator.hh"
#include "service/fleet.hh"
#include "service/ingest.hh"
#include "service/report_store.hh"
#include "service/service.hh"
#include "testutil.hh"
#include "trace/trace_file.hh"
#include "workload/registry.hh"

namespace prorace {
namespace {

using detect::IncrementalFastTrack;
using detect::IncrementalOptions;
using detect::MemAccess;

// ---------------------------------------------------------------------
// Incremental-vs-oneshot identity
// ---------------------------------------------------------------------

/** Analyze @p trace twice — one-shot and streaming — and compare. */
void
expectIncrementalIdentity(const asmkit::Program &program,
                          const trace::RunTrace &trace,
                          const pmu::PtFilter &filter,
                          const std::string &label)
{
    core::OfflineOptions oneshot;
    oneshot.pt_filter = filter;
    core::OfflineAnalyzer a(program, oneshot);
    const core::OfflineResult base = a.analyze(trace);

    core::OfflineOptions streaming = oneshot;
    streaming.incremental.enabled = true;
    streaming.incremental.batch_events = 256; // many boundaries
    streaming.incremental.gc_min_events = 64;
    core::OfflineAnalyzer b(program, streaming);
    const core::OfflineResult inc = b.analyze(trace);

    EXPECT_EQ(base.report.format(&program), inc.report.format(&program))
        << label << ": streaming report differs from one-shot";
    EXPECT_GT(inc.incremental.batches, 0u) << label;

    // And with GC off entirely (the lossy-sync fallback path).
    core::OfflineOptions nogc = streaming;
    nogc.incremental.enable_gc = false;
    core::OfflineAnalyzer c(program, nogc);
    const core::OfflineResult raw = c.analyze(trace);
    EXPECT_EQ(base.report.format(&program), raw.report.format(&program))
        << label << ": unswept streaming report differs from one-shot";
}

TEST(IncrementalIdentity, EveryRegistrySubject)
{
    const uint64_t seed = testutil::testSeed(11);
    PRORACE_SEED_TRACE(seed);
    for (const std::string &name : workload::allWorkloadNames()) {
        auto w = workload::findWorkload(name, 0.1);
        ASSERT_TRUE(w.has_value()) << name;
        core::PipelineConfig cfg =
            core::proRaceConfig(8, seed, w->pt_filter);
        cfg.session.run_baseline = false;
        core::RunArtifacts run =
            core::Session::run(*w->program, w->setup, cfg.session);
        expectIncrementalIdentity(*w->program, run.trace, w->pt_filter,
                                  name);
    }
}

TEST(IncrementalIdentity, OracleBattery)
{
    const uint64_t seed = testutil::testSeed(23);
    PRORACE_SEED_TRACE(seed);
    for (const oracle::GeneratorConfig &cfg :
         oracle::standardBattery(seed, 3)) {
        const oracle::GeneratedWorkload gw = oracle::generate(cfg);
        core::PipelineConfig pc =
            core::proRaceConfig(6, seed + 7, gw.workload.pt_filter);
        pc.session.run_baseline = false;
        core::RunArtifacts run = core::Session::run(
            *gw.workload.program, gw.workload.setup, pc.session);
        expectIncrementalIdentity(*gw.workload.program, run.trace,
                                  gw.workload.pt_filter,
                                  gw.workload.name);
    }
}

// ---------------------------------------------------------------------
// Epoch GC unit tests
// ---------------------------------------------------------------------

MemAccess
access(uint32_t tid, uint64_t addr, bool is_write, uint32_t insn,
       uint64_t tsc)
{
    MemAccess ma;
    ma.tid = tid;
    ma.addr = addr;
    ma.is_write = is_write;
    ma.insn_index = insn;
    ma.tsc = tsc;
    return ma;
}

IncrementalOptions
eagerGc()
{
    IncrementalOptions options;
    options.enabled = true;
    options.gc_min_events = 0; // sweep at every boundary
    return options;
}

TEST(EpochGc, QuiescentStateIsReclaimed)
{
    IncrementalFastTrack ft(eagerGc());
    ft.requireThread(0);
    ft.requireThread(1);

    // t0 forks t1; both write disjoint granules, then synchronize so
    // every clock moves past those writes.
    ft.fork(0, 1);
    ft.access(access(0, 0x1000, true, 1, 10));
    ft.access(access(1, 0x2000, true, 2, 11));
    ft.release(1, 0x9000);
    ft.acquire(0, 0x9000);
    ft.release(0, 0x9100);
    ft.acquire(1, 0x9100);
    EXPECT_EQ(ft.liveGranules(), 2u);

    ft.batchBoundary(100);
    const detect::IncrementalStats &stats = ft.incrementalStats();
    EXPECT_EQ(stats.gc_sweeps, 1u);
    EXPECT_EQ(stats.granules_reclaimed, 2u);
    EXPECT_EQ(ft.liveGranules(), 0u);
    EXPECT_TRUE(ft.report().empty());
}

TEST(EpochGc, UnsynchronizedStateSurvivesSweep)
{
    IncrementalFastTrack ft(eagerGc());
    ft.requireThread(0);
    ft.requireThread(1);

    // t1's write is not ordered before t0's current clock: it must
    // stay resident (t0 could still race with it).
    ft.fork(0, 1);
    ft.access(access(1, 0x2000, true, 2, 11));
    ft.batchBoundary(100);
    EXPECT_EQ(ft.liveGranules(), 1u);

    // ... and it does race.
    ft.access(access(0, 0x2000, true, 3, 20));
    EXPECT_EQ(ft.report().size(), 1u);
}

TEST(EpochGc, GatedUntilRequiredThreadsAppear)
{
    IncrementalFastTrack ft(eagerGc());
    ft.requireThread(0);
    ft.requireThread(7); // never produces an event

    ft.access(access(0, 0x1000, true, 1, 10));
    ft.batchBoundary(100);
    EXPECT_FALSE(ft.gcUngated());
    EXPECT_EQ(ft.incrementalStats().gc_sweeps, 0u);
    EXPECT_GT(ft.incrementalStats().gc_gated, 0u);
    EXPECT_EQ(ft.liveGranules(), 1u); // conservative: nothing swept
}

TEST(EpochGc, NoResurrectionAfterExitReclaim)
{
    IncrementalOptions options = eagerGc();
    IncrementalFastTrack gc(options);
    options.enable_gc = false;
    IncrementalFastTrack raw(options);

    for (IncrementalFastTrack *ft : {&gc, &raw}) {
        ft->requireThread(0);
        ft->requireThread(1);
        ft->fork(0, 1);
        ft->access(access(1, 0x2000, true, 2, 11));
        ft->threadExit(1, 20);
        ft->join(0, 1); // t0 now dominates t1's whole history
        ft->batchBoundary(50); // frontier past the exit: t1 retires
    }
    // The sweep reclaimed both the granule t1 wrote and t1's exit
    // clock (joined, so dominated by the only live clock).
    EXPECT_GT(gc.incrementalStats().clocks_reclaimed, 0u);
    EXPECT_GT(gc.incrementalStats().granules_reclaimed, 0u);
    EXPECT_EQ(raw.incrementalStats().clocks_reclaimed, 0u);
    EXPECT_EQ(gc.liveGranules(), 0u);

    // A straggling duplicate join of the reclaimed thread is a silent
    // no-op (the unswept detector joins harmlessly again); later
    // accesses must behave identically: no spurious race from swept
    // state, no missed race.
    for (IncrementalFastTrack *ft : {&gc, &raw}) {
        ft->join(0, 1);
        ft->access(access(0, 0x2000, false, 3, 60));
        ft->access(access(0, 0x2000, true, 4, 61));
        ft->finish();
    }
    EXPECT_EQ(gc.report().format(nullptr), raw.report().format(nullptr));
    EXPECT_TRUE(gc.report().empty());
}

TEST(EpochGc, ExitTiesAtFrontierStayLive)
{
    IncrementalFastTrack ft(eagerGc());
    ft.requireThread(0);
    ft.requireThread(1);
    // t0 writes after the fork, so t1 never observed the write: only
    // t1's presence in the floor keeps it resident.
    ft.fork(0, 1);
    ft.access(access(0, 0x3000, true, 5, 10));
    ft.threadExit(1, 30);

    // Frontier == exit tsc: same-TSC stragglers of t1 may still
    // arrive, so t1 must stay in the floor — retiring it here would
    // sweep the write (t0 dominates its own state) and the straggler
    // below would miss its race.
    ft.batchBoundary(30);
    EXPECT_EQ(ft.liveGranules(), 1u);
    ft.access(access(1, 0x3000, false, 6, 30));
    EXPECT_EQ(ft.report().size(), 1u);
}

// ---------------------------------------------------------------------
// Ingest backpressure
// ---------------------------------------------------------------------

service::IngestQueue::Chunk
chunk(const std::string &tenant, uint64_t session, size_t bytes)
{
    service::IngestQueue::Chunk c;
    c.tenant = tenant;
    c.session = session;
    c.bytes.assign(bytes, 0xab);
    return c;
}

TEST(Backpressure, StallingProducerNeverExceedsCredit)
{
    service::IngestPolicy policy;
    policy.credit_bytes = 1024;
    policy.shed_on_full = false;
    service::IngestQueue queue(policy);

    // A flooding producer: 64 chunks of 256 bytes = 16x the credit.
    std::thread producer([&] {
        for (int i = 0; i < 64; ++i)
            queue.push(chunk("t", 1, 256));
        queue.push([] {
            service::IngestQueue::Chunk c;
            c.tenant = "t";
            c.session = 1;
            c.close = true;
            return c;
        }());
    });

    size_t popped = 0;
    uint64_t max_buffered = 0;
    service::IngestQueue::Chunk c;
    while (queue.pop(c)) {
        max_buffered = std::max(max_buffered, queue.bufferedBytes() +
                                                  c.bytes.size());
        if (c.close)
            break;
        ++popped;
        // Simulate slow parsing before the credit returns.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        queue.credit(c.tenant, c.bytes.size());
    }
    producer.join();

    EXPECT_EQ(popped, 64u);
    EXPECT_LE(max_buffered, policy.credit_bytes);
    const service::IngestStats stats = queue.stats();
    EXPECT_LE(stats.peak_buffered_bytes, policy.credit_bytes);
    EXPECT_LE(stats.tenants.at("t").peak_outstanding,
              policy.credit_bytes);
    EXPECT_GT(stats.tenants.at("t").stalls, 0u);
    EXPECT_EQ(stats.tenants.at("t").bytes, 64u * 256u);
}

TEST(Backpressure, SheddingPolicyDropsInsteadOfBlocking)
{
    service::IngestPolicy policy;
    policy.credit_bytes = 1024;
    policy.shed_on_full = true;
    service::IngestQueue queue(policy);

    // No consumer crediting: only the first credit's worth is accepted.
    size_t accepted = 0, shed = 0;
    for (int i = 0; i < 64; ++i) {
        switch (queue.push(chunk("t", 1, 256))) {
        case service::IngestQueue::PushResult::kAccepted:
            ++accepted;
            break;
        case service::IngestQueue::PushResult::kShed:
            ++shed;
            break;
        default:
            FAIL();
        }
    }
    EXPECT_EQ(accepted, 4u); // 1024 / 256
    EXPECT_EQ(shed, 60u);
    const service::IngestStats stats = queue.stats();
    EXPECT_EQ(stats.tenants.at("t").shed_chunks, 60u);
    EXPECT_LE(queue.bufferedBytes(), policy.credit_bytes);
}

TEST(Backpressure, OversizedChunkAdmittedWhenIdle)
{
    service::IngestPolicy policy;
    policy.credit_bytes = 100;
    policy.shed_on_full = true;
    service::IngestQueue queue(policy);

    // Larger than the whole budget, but the tenant is idle: admitted.
    EXPECT_EQ(queue.push(chunk("t", 1, 500)),
              service::IngestQueue::PushResult::kAccepted);
    // Not idle anymore: shed.
    EXPECT_EQ(queue.push(chunk("t", 1, 500)),
              service::IngestQueue::PushResult::kShed);
    queue.credit("t", 500);
    EXPECT_EQ(queue.push(chunk("t", 1, 500)),
              service::IngestQueue::PushResult::kAccepted);
}

TEST(Backpressure, TenantsAreIsolated)
{
    service::IngestPolicy policy;
    policy.credit_bytes = 256;
    policy.shed_on_full = true;
    service::IngestQueue queue(policy);

    // Exhaust tenant a's credit; tenant b is unaffected.
    EXPECT_EQ(queue.push(chunk("a", 1, 256)),
              service::IngestQueue::PushResult::kAccepted);
    EXPECT_EQ(queue.push(chunk("a", 1, 1)),
              service::IngestQueue::PushResult::kShed);
    EXPECT_EQ(queue.push(chunk("b", 2, 256)),
              service::IngestQueue::PushResult::kAccepted);
}

// ---------------------------------------------------------------------
// Resumable trace cursor
// ---------------------------------------------------------------------

TEST(TraceCursor, ChunkedTailingMatchesOneShot)
{
    const uint64_t seed = testutil::testSeed(31);
    PRORACE_SEED_TRACE(seed);
    auto w = workload::findWorkload("aget-bug2", 0.3);
    ASSERT_TRUE(w.has_value());
    core::PipelineConfig cfg = core::proRaceConfig(10, seed, w->pt_filter);
    cfg.session.run_baseline = false;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);
    const std::vector<uint8_t> bytes = trace::serializeTrace(run.trace);

    auto oneshot = trace::readTrace(bytes);
    ASSERT_TRUE(oneshot.ok());

    for (const size_t chunk_size : {1ul, 7ul, 256ul, 65536ul}) {
        trace::TraceReader reader("chunked");
        uint64_t last_parsed = 0;
        for (size_t off = 0; off < bytes.size(); off += chunk_size) {
            const size_t len =
                std::min(chunk_size, bytes.size() - off);
            reader.feed(bytes.data() + off, len);
            reader.poll();
            // The cursor advances monotonically and never re-parses.
            EXPECT_GE(reader.segmentsParsed(), last_parsed);
            last_parsed = reader.segmentsParsed();
        }
        // Bounded residency: the buffer holds at most the in-flight
        // tail, not the whole stream.
        EXPECT_LT(reader.bytesBuffered(), bytes.size());
        auto streamed = reader.finish();
        ASSERT_TRUE(streamed.ok()) << "chunk " << chunk_size;
        EXPECT_EQ(trace::serializeTrace(streamed.value().trace),
                  trace::serializeTrace(oneshot.value().trace))
            << "chunk " << chunk_size;
        EXPECT_EQ(streamed.value().loss.segments_seen,
                  oneshot.value().loss.segments_seen);
    }
}

// ---------------------------------------------------------------------
// Report store
// ---------------------------------------------------------------------

detect::DataRace
makeRace(uint32_t insn_a, uint32_t insn_b, bool write_a, bool write_b,
         uint64_t addr)
{
    detect::DataRace race;
    race.addr = addr;
    race.prior.tid = 1;
    race.prior.insn_index = insn_a;
    race.prior.is_write = write_a;
    race.current.tid = 2;
    race.current.insn_index = insn_b;
    race.current.is_write = write_b;
    return race;
}

TEST(ReportStore, DedupKeyIsOrderInvariant)
{
    const uint64_t fp = service::programFingerprint("prog");
    const service::RaceSiteKey forward =
        service::raceSiteKey(fp, makeRace(45, 49, false, true, 0x10));
    const service::RaceSiteKey backward =
        service::raceSiteKey(fp, makeRace(49, 45, true, false, 0x20));
    EXPECT_EQ(forward, backward);
    EXPECT_EQ(service::rwSignatureName(forward.rw_signature), "RW");

    // Different rw shape at the same site is a different key.
    const service::RaceSiteKey ww =
        service::raceSiteKey(fp, makeRace(45, 49, true, true, 0x10));
    EXPECT_FALSE(forward == ww);
    EXPECT_EQ(service::rwSignatureName(ww.rw_signature), "WW");
}

TEST(ReportStore, AggregatesAcrossTenantsAndSessions)
{
    service::ReportStore store;
    detect::RaceReport report;
    report.add(makeRace(45, 49, false, true, 0x10));

    store.ingest("alpha", "prog", report, 3);
    store.ingest("beta", "prog", report, 1); // out-of-order completion
    store.ingest("alpha", "prog", report, 7);

    EXPECT_EQ(store.distinctRaces(), 1u);
    EXPECT_EQ(store.totalObservations(), 3u);
    const std::vector<service::StoredRace> rows = store.query("prog");
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].observations, 3u);
    EXPECT_EQ(rows[0].tenants.size(), 2u);
    EXPECT_EQ(rows[0].first_seen, 1u);
    EXPECT_EQ(rows[0].last_seen, 7u);

    EXPECT_EQ(store.query("prog", "beta").size(), 1u);
    EXPECT_EQ(store.query("other").size(), 0u);
    EXPECT_NE(store.toJsonl().find("\"insn_pair\":[45,49]"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// The service end to end
// ---------------------------------------------------------------------

TEST(AnalysisService, MultiTenantStreamingMatchesDirectAnalysis)
{
    const uint64_t seed = testutil::testSeed(41);
    PRORACE_SEED_TRACE(seed);
    auto w = workload::findWorkload("aget-bug2", 0.5);
    ASSERT_TRUE(w.has_value());
    core::PipelineConfig cfg = core::proRaceConfig(8, seed, w->pt_filter);
    cfg.session.run_baseline = false;
    core::RunArtifacts run =
        core::Session::run(*w->program, w->setup, cfg.session);
    const std::vector<uint8_t> bytes = trace::serializeTrace(run.trace);

    core::OfflineOptions direct;
    direct.pt_filter = w->pt_filter;
    core::OfflineAnalyzer analyzer(*w->program, direct);
    const std::string expected =
        analyzer.analyze(run.trace).report.format(w->program.get());

    service::ServiceOptions options;
    options.num_workers = 2;
    options.session_slots = 2;
    options.offline.pt_filter = w->pt_filter;
    service::AnalysisService svc(options);
    svc.registerProgram("aget-bug2", w->program);

    constexpr int kTenants = 2, kSessions = 2;
    std::vector<std::thread> producers;
    for (int t = 0; t < kTenants; ++t) {
        producers.emplace_back([&, t] {
            const std::string tenant = "tenant-" + std::to_string(t);
            for (int s = 0; s < kSessions; ++s) {
                const uint64_t id = svc.openSession(tenant, "aget-bug2");
                ASSERT_NE(id, 0u);
                for (size_t off = 0; off < bytes.size(); off += 997) {
                    const size_t len =
                        std::min<size_t>(997, bytes.size() - off);
                    EXPECT_TRUE(svc.submit(id, bytes.data() + off, len));
                }
                svc.closeSession(id);
            }
        });
    }
    for (std::thread &p : producers)
        p.join();
    svc.drain();

    // Every session reproduced the direct analysis byte for byte.
    const std::vector<service::SessionOutcome> outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(),
              static_cast<size_t>(kTenants * kSessions));
    for (const service::SessionOutcome &outcome : outcomes) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(outcome.report.format(w->program.get()), expected);
    }

    // The store deduplicated across tenants...
    ASSERT_FALSE(expected.empty());
    const service::ServiceStats stats = svc.stats();
    EXPECT_GT(stats.distinct_races, 0u);
    EXPECT_EQ(stats.report_observations,
              static_cast<uint64_t>(kTenants * kSessions));
    for (const service::StoredRace &row : svc.store().query()) {
        EXPECT_EQ(row.observations,
                  static_cast<uint64_t>(kTenants * kSessions));
        EXPECT_EQ(row.tenants.size(), static_cast<size_t>(kTenants));
    }

    // ... and the per-tenant counters roll up consistently.
    const auto tenants = svc.tenantStats();
    ASSERT_EQ(tenants.size(), static_cast<size_t>(kTenants));
    uint64_t completed = 0, events = 0;
    for (const auto &[name, ts] : tenants) {
        EXPECT_EQ(ts.sessions_completed,
                  static_cast<uint64_t>(kSessions));
        completed += ts.sessions_completed;
        events += ts.incremental.events;
    }
    EXPECT_EQ(stats.rollup.sessions_completed, completed);
    EXPECT_EQ(stats.rollup.incremental.events, events);
    EXPECT_GT(events, 0u);
    EXPECT_EQ(svc.latencies().size(), outcomes.size());

    svc.shutdown();
    EXPECT_EQ(svc.openSession("late", "aget-bug2"), 0u);
}

TEST(AnalysisService, SessionSlotsThrottleAndShed)
{
    service::ServiceOptions options;
    options.num_workers = 1;
    options.session_slots = 1;
    options.ingest.shed_on_full = true;
    service::AnalysisService svc(options);

    auto w = workload::findWorkload("aget-bug2", 0.1);
    ASSERT_TRUE(w.has_value());
    svc.registerProgram("p", w->program);

    // Slot 1 taken and never closed: the second open sheds.
    const uint64_t first = svc.openSession("t", "p");
    ASSERT_NE(first, 0u);
    EXPECT_EQ(svc.openSession("t", "p"), 0u);
    // A different tenant still gets a slot.
    EXPECT_NE(svc.openSession("u", "p"), 0u);
    EXPECT_EQ(svc.stats().sessions_shed, 1u);

    // Unknown programs and sessions are rejected cleanly.
    EXPECT_EQ(svc.openSession("t", "nope"), 0u);
    EXPECT_FALSE(svc.submit(12345, nullptr, 0));
    svc.closeSession(first);
    svc.drain();
    EXPECT_NE(svc.openSession("t", "p"), 0u); // slot came back
}

TEST(AnalysisService, DamagedStreamFailsSessionOnly)
{
    service::ServiceOptions options;
    service::AnalysisService svc(options);
    auto w = workload::findWorkload("aget-bug2", 0.1);
    ASSERT_TRUE(w.has_value());
    svc.registerProgram("p", w->program);

    const uint64_t id = svc.openSession("t", "p");
    const std::vector<uint8_t> garbage(64, 0xee);
    EXPECT_TRUE(svc.submit(id, garbage.data(), garbage.size()));
    svc.closeSession(id);
    svc.drain();

    const auto outcomes = svc.outcomes();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[0].error.empty());
    EXPECT_EQ(svc.tenantStats().at("t").sessions_failed, 1u);
    EXPECT_EQ(svc.stats().distinct_races, 0u);
}

TEST(FleetSimulator, SmokeRunDetectsAndDeduplicates)
{
    service::FleetConfig cfg;
    cfg.producers = 2;
    cfg.sessions_per_producer = 2;
    cfg.subjects = {"aget-bug2"};
    cfg.scale = 0.3;
    cfg.period = 8;
    cfg.seed = testutil::testSeed(53);
    cfg.service.num_workers = 2;
    const service::FleetResult result = service::runFleet(cfg);

    EXPECT_EQ(result.sessions_opened, 4u);
    EXPECT_EQ(result.sessions_rejected, 0u);
    EXPECT_EQ(result.stats.rollup.sessions_completed, 4u);
    EXPECT_EQ(result.stats.rollup.sessions_failed, 0u);
    EXPECT_GT(result.stats.distinct_races, 0u);
    EXPECT_EQ(result.latencies.size(), 4u);
    EXPECT_FALSE(result.report_jsonl.empty());
    // Both tenants stream the same subject: every stored race was
    // observed by both.
    EXPECT_NE(result.report_jsonl.find("\"tenants\":2"),
              std::string::npos);
}

} // namespace
} // namespace prorace

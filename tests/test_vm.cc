/**
 * @file
 * Unit and integration tests for the simulated machine.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "asmkit/builder.hh"
#include "asmkit/layout.hh"
#include "vm/machine.hh"

#include "testutil.hh"

namespace prorace::vm {
namespace {

using asmkit::Program;
using asmkit::ProgramBuilder;
using isa::AluOp;
using isa::CondCode;
using isa::MemOperand;
using isa::Reg;
using isa::SyscallNo;

MachineConfig
quietConfig()
{
    MachineConfig cfg;
    cfg.seed = 1;
    return cfg;
}

TEST(Machine, ArithmeticLoopComputesSum)
{
    ProgramBuilder b;
    b.globalU64("sum", 0);
    b.label("main");
    b.movri(Reg::rax, 0);   // i
    b.movri(Reg::rbx, 0);   // acc
    b.label("loop");
    b.alurr(AluOp::kAdd, Reg::rbx, Reg::rax);
    b.addri(Reg::rax, 1);
    b.cmpri(Reg::rax, 100);
    b.jcc(CondCode::kLt, "loop");
    b.store(b.symRef("sum"), Reg::rbx);
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kFinished);
    EXPECT_EQ(m.memory().read(p.symbol("sum").addr, 8), 4950u);
}

TEST(Machine, LoadStoreWidthsAndSignExtension)
{
    ProgramBuilder b;
    b.global("buf", 16);
    b.label("main");
    b.movri(Reg::rax, -2);  // 0xfffffffffffffffe
    b.store(b.symRef("buf"), Reg::rax, 4);           // 0xfffffffe
    b.load(Reg::rbx, b.symRef("buf"), 4, false);     // zero extend
    b.load(Reg::rcx, b.symRef("buf"), 4, true);      // sign extend
    b.load(Reg::rdx, b.symRef("buf"), 1, false);     // 0xfe
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    m.run();
    EXPECT_EQ(m.thread(0).regs.get(Reg::rbx), 0xfffffffeull);
    EXPECT_EQ(m.thread(0).regs.get(Reg::rcx), ~1ull);
    EXPECT_EQ(m.thread(0).regs.get(Reg::rdx), 0xfeull);
}

TEST(Machine, CallRetUseStack)
{
    ProgramBuilder b;
    b.globalU64("out", 0);
    b.label("main");
    b.movri(Reg::rdi, 20);
    b.call("double_it");
    b.store(b.symRef("out"), Reg::rax);
    b.halt();
    b.beginFunction("double_it");
    b.movrr(Reg::rax, Reg::rdi);
    b.alurr(AluOp::kAdd, Reg::rax, Reg::rdi);
    b.ret();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kFinished);
    EXPECT_EQ(m.memory().read(p.symbol("out").addr, 8), 40u);
    // rsp restored
    EXPECT_EQ(m.thread(0).regs.get(Reg::rsp), asmkit::stackTopFor(0));
}

TEST(Machine, IndirectCallThroughFunctionPointer)
{
    // A one-entry vtable in global data holds the callee's entry index;
    // main loads it and calls indirectly.
    ProgramBuilder b;
    b.globalU64("result", 0);
    b.globalU64("vtable", 0); // patched before the run
    b.label("main");
    b.load(Reg::r11, b.symRef("vtable"));
    b.callind(Reg::r11);
    b.store(b.symRef("result"), Reg::rax);
    b.halt();
    b.beginFunction("callee");
    b.movri(Reg::rax, 77);
    b.ret();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.memory().write(p.symbol("vtable").addr, p.labelAddr("callee"), 8);
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kFinished);
    EXPECT_EQ(m.memory().read(p.symbol("result").addr, 8), 77u);
}

TEST(Machine, SpawnJoinPropagatesWork)
{
    ProgramBuilder b;
    b.globalU64("total", 0);
    b.global("m", 8);
    b.label("main");
    b.movri(Reg::r12, 1);
    b.spawn(Reg::r8, "worker", Reg::r12);
    b.movri(Reg::r12, 2);
    b.spawn(Reg::r9, "worker", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.halt();
    b.beginFunction("worker");
    // total += arg (under lock), 10 times
    b.movri(Reg::rcx, 0);
    b.label("wl");
    b.lock(b.symRef("m"));
    b.load(Reg::rax, b.symRef("total"));
    b.alurr(AluOp::kAdd, Reg::rax, Reg::rdi);
    b.store(b.symRef("total"), Reg::rax);
    b.unlock(b.symRef("m"));
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 10);
    b.jcc(CondCode::kLt, "wl");
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kFinished);
    EXPECT_EQ(m.memory().read(p.symbol("total").addr, 8), 30u);
    EXPECT_EQ(m.numThreads(), 3u);
}

TEST(Machine, MutexProvidesMutualExclusion)
{
    // Without the lock this increment loop loses updates with high
    // probability; with it the total must be exact for every seed.
    for (uint64_t seed : testutil::testSeeds({1ull, 2ull, 3ull, 17ull})) {
        PRORACE_SEED_TRACE(seed);
        ProgramBuilder b;
        b.globalU64("counter", 0);
        b.global("mtx", 8);
        b.label("main");
        b.movri(Reg::r12, 0);
        b.spawn(Reg::r8, "incr", Reg::r12);
        b.spawn(Reg::r9, "incr", Reg::r12);
        b.spawn(Reg::r10, "incr", Reg::r12);
        b.join(Reg::r8);
        b.join(Reg::r9);
        b.join(Reg::r10);
        b.halt();
        b.beginFunction("incr");
        b.movri(Reg::rcx, 0);
        b.label("il");
        b.lock(b.symRef("mtx"));
        b.load(Reg::rax, b.symRef("counter"));
        b.addri(Reg::rax, 1);
        b.store(b.symRef("counter"), Reg::rax);
        b.unlock(b.symRef("mtx"));
        b.addri(Reg::rcx, 1);
        b.cmpri(Reg::rcx, 200);
        b.jcc(CondCode::kLt, "il");
        b.halt();
        Program p = b.build();

        MachineConfig cfg = quietConfig();
        cfg.seed = seed;
        Machine m(p, cfg);
        m.addThread("main");
        EXPECT_EQ(m.run(), RunStatus::kFinished);
        EXPECT_EQ(m.memory().read(p.symbol("counter").addr, 8), 600u)
            << "seed " << seed;
    }
}

TEST(Machine, UnsynchronizedCountersLoseUpdatesForSomeSeed)
{
    // The dual of the previous test: the same loop without the lock must
    // exhibit a lost update for at least one seed — the machine really
    // interleaves.
    bool lost = false;
    for (uint64_t seed = 1; seed <= 20 && !lost; ++seed) {
        ProgramBuilder b;
        b.globalU64("counter", 0);
        b.label("main");
        b.movri(Reg::r12, 0);
        b.spawn(Reg::r8, "incr", Reg::r12);
        b.spawn(Reg::r9, "incr", Reg::r12);
        b.join(Reg::r8);
        b.join(Reg::r9);
        b.halt();
        b.beginFunction("incr");
        b.movri(Reg::rcx, 0);
        b.label("il");
        b.load(Reg::rax, b.symRef("counter"));
        b.addri(Reg::rax, 1);
        b.store(b.symRef("counter"), Reg::rax);
        b.addri(Reg::rcx, 1);
        b.cmpri(Reg::rcx, 500);
        b.jcc(CondCode::kLt, "il");
        b.halt();
        Program p = b.build();

        MachineConfig cfg = quietConfig();
        cfg.seed = seed;
        Machine m(p, cfg);
        m.addThread("main");
        m.run();
        if (m.memory().read(p.symbol("counter").addr, 8) < 1000u)
            lost = true;
    }
    EXPECT_TRUE(lost);
}

TEST(Machine, CondVarProducerConsumer)
{
    ProgramBuilder b;
    b.globalU64("item", 0);
    b.globalU64("ready", 0);
    b.globalU64("got", 0);
    b.global("mtx", 8);
    b.global("cv", 8);
    b.label("main");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "consumer", Reg::r12);
    // producer: item = 99; ready = 1; signal
    b.lock(b.symRef("mtx"));
    b.movri(Reg::rax, 99);
    b.store(b.symRef("item"), Reg::rax);
    b.movri(Reg::rax, 1);
    b.store(b.symRef("ready"), Reg::rax);
    b.condSignal(b.symRef("cv"));
    b.unlock(b.symRef("mtx"));
    b.join(Reg::r8);
    b.halt();
    b.beginFunction("consumer");
    b.lock(b.symRef("mtx"));
    b.label("check");
    b.load(Reg::rax, b.symRef("ready"));
    b.cmpri(Reg::rax, 1);
    b.jcc(CondCode::kEq, "consume");
    b.lea(Reg::r13, b.symRef("mtx"));
    b.condWait(b.symRef("cv"), Reg::r13);
    b.jmp("check");
    b.label("consume");
    b.load(Reg::rax, b.symRef("item"));
    b.store(b.symRef("got"), Reg::rax);
    b.unlock(b.symRef("mtx"));
    b.halt();
    Program p = b.build();

    for (uint64_t seed = 1; seed <= 8; ++seed) {
        MachineConfig cfg = quietConfig();
        cfg.seed = seed;
        Machine m(p, cfg);
        m.addThread("main");
        EXPECT_EQ(m.run(), RunStatus::kFinished) << "seed " << seed;
        EXPECT_EQ(m.memory().read(p.symbol("got").addr, 8), 99u)
            << "seed " << seed;
    }
}

TEST(Machine, BarrierSynchronizesPhases)
{
    ProgramBuilder b;
    b.global("bar", 8);
    b.global("slots", 4 * 8);
    b.globalU64("check", 0);
    b.label("main");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "phase_worker", Reg::r12);
    b.movri(Reg::r12, 1);
    b.spawn(Reg::r9, "phase_worker", Reg::r12);
    b.movri(Reg::r12, 2);
    b.spawn(Reg::r10, "phase_worker", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.join(Reg::r10);
    b.halt();
    b.beginFunction("phase_worker");
    // phase 1: slots[arg] = arg + 1
    b.movrr(Reg::rax, Reg::rdi);
    b.addri(Reg::rax, 1);
    b.lea(Reg::rbx, b.symRef("slots"));
    b.store(MemOperand::baseIndex(Reg::rbx, Reg::rdi, 8), Reg::rax);
    b.barrier(b.symRef("bar"), 3);
    // phase 2: everyone checks the sum is 1+2+3 = 6
    b.lea(Reg::rbx, b.symRef("slots"));
    b.load(Reg::rax, MemOperand::baseDisp(Reg::rbx, 0));
    b.load(Reg::rcx, MemOperand::baseDisp(Reg::rbx, 8));
    b.alurr(AluOp::kAdd, Reg::rax, Reg::rcx);
    b.load(Reg::rcx, MemOperand::baseDisp(Reg::rbx, 16));
    b.alurr(AluOp::kAdd, Reg::rax, Reg::rcx);
    b.cmpri(Reg::rax, 6);
    b.jcc(CondCode::kEq, "ok");
    // failure: mark check = 1
    b.movri(Reg::rax, 1);
    b.store(b.symRef("check"), Reg::rax);
    b.label("ok");
    b.halt();
    Program p = b.build();

    for (uint64_t seed = 1; seed <= 8; ++seed) {
        MachineConfig cfg = quietConfig();
        cfg.seed = seed;
        Machine m(p, cfg);
        m.addThread("main");
        EXPECT_EQ(m.run(), RunStatus::kFinished) << "seed " << seed;
        EXPECT_EQ(m.memory().read(p.symbol("check").addr, 8), 0u)
            << "seed " << seed;
    }
}

TEST(Machine, MallocFreeReuseIsLifo)
{
    ProgramBuilder b;
    b.globalU64("a1", 0);
    b.globalU64("a2", 0);
    b.label("main");
    b.movri(Reg::rsi, 64);
    b.mallocCall(Reg::rax, Reg::rsi);
    b.store(b.symRef("a1"), Reg::rax);
    b.freeCall(Reg::rax);
    b.mallocCall(Reg::rbx, Reg::rsi);
    b.store(b.symRef("a2"), Reg::rbx);
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    m.run();
    const uint64_t a1 = m.memory().read(p.symbol("a1").addr, 8);
    const uint64_t a2 = m.memory().read(p.symbol("a2").addr, 8);
    EXPECT_EQ(a1, a2) << "freed block should be reused LIFO";
    EXPECT_TRUE(asmkit::isHeapAddress(a1));
}

TEST(Machine, DeadlockIsDetected)
{
    ProgramBuilder b;
    b.global("m1", 8);
    b.label("main");
    b.lock(b.symRef("m1"));
    b.lock(b.symRef("m1")); // self-deadlock (non-recursive mutex)
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kDeadlock);
}

TEST(Machine, InstructionLimitStopsRunawayLoop)
{
    ProgramBuilder b;
    b.label("main");
    b.label("spin");
    b.jmp("spin");
    Program p = b.build();

    MachineConfig cfg = quietConfig();
    cfg.max_instructions = 10000;
    Machine m(p, cfg);
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kInsnLimit);
}

TEST(Machine, IoSyscallsAdvanceTimeWithoutBusyCost)
{
    ProgramBuilder b;
    b.label("main");
    b.syscall(SyscallNo::kNetRecv, 100000);
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kFinished);
    EXPECT_GE(m.wallTime(), 100000u);
    EXPECT_LT(m.totalInstructions(), 10u);
}

TEST(Machine, MemoryLogRecordsAllAccesses)
{
    ProgramBuilder b;
    b.globalU64("x", 0);
    b.label("main");
    b.load(Reg::rax, b.symRef("x"));
    b.addri(Reg::rax, 1);
    b.store(b.symRef("x"), Reg::rax);
    b.halt();
    Program p = b.build();

    MachineConfig cfg = quietConfig();
    cfg.record_memory_log = true;
    Machine m(p, cfg);
    m.addThread("main");
    m.run();
    const auto &log = m.memoryLog();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_FALSE(log[0].is_write);
    EXPECT_TRUE(log[1].is_write);
    EXPECT_EQ(log[0].addr, p.symbol("x").addr);
    EXPECT_LT(log[0].tsc, log[1].tsc);
}

TEST(Machine, ObserverSeesPreExecutionRegisters)
{
    struct Probe : ExecutionObserver {
        uint64_t seen_rax = 0;
        uint64_t addr = 0;
        uint64_t
        onMemOp(const MemOpEvent &ev) override
        {
            if (!ev.is_write) {
                seen_rax = ev.regs->get(Reg::rax);
                addr = ev.addr;
            }
            return 0;
        }
    };

    ProgramBuilder b;
    b.globalU64("x", 1234);
    b.label("main");
    b.movri(Reg::rax, 55);
    b.load(Reg::rax, b.symRef("x")); // overwrites rax with 1234
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    Probe probe;
    m.setObserver(&probe);
    m.addThread("main");
    m.run();
    EXPECT_EQ(probe.seen_rax, 55u) << "observer must see pre-state";
    EXPECT_EQ(probe.addr, p.symbol("x").addr);
    EXPECT_EQ(m.thread(0).regs.get(Reg::rax), 1234u);
}

TEST(Machine, ObserverCostsExtendWallTime)
{
    auto run_with_cost = [](uint64_t cost) {
        struct Taxer : ExecutionObserver {
            uint64_t cost;
            explicit Taxer(uint64_t c) : cost(c) {}
            uint64_t onMemOp(const MemOpEvent &) override { return cost; }
        };
        ProgramBuilder b;
        b.globalU64("x", 0);
        b.label("main");
        b.movri(Reg::rcx, 0);
        b.label("l");
        b.load(Reg::rax, b.symRef("x"));
        b.addri(Reg::rcx, 1);
        b.cmpri(Reg::rcx, 1000);
        b.jcc(CondCode::kLt, "l");
        b.halt();
        Program p = b.build();
        Machine m(p, quietConfig());
        Taxer taxer(cost);
        m.setObserver(&taxer);
        m.addThread("main");
        m.run();
        return m.wallTime();
    };
    const uint64_t base = run_with_cost(0);
    const uint64_t taxed = run_with_cost(10);
    EXPECT_GT(taxed, base + 9000u);
}

TEST(Machine, AtomicRmwIsAtomicAcrossThreads)
{
    ProgramBuilder b;
    b.globalU64("counter", 0);
    b.label("main");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::r8, "atomic_incr", Reg::r12);
    b.spawn(Reg::r9, "atomic_incr", Reg::r12);
    b.join(Reg::r8);
    b.join(Reg::r9);
    b.halt();
    b.beginFunction("atomic_incr");
    b.movri(Reg::rcx, 0);
    b.movri(Reg::rdx, 1);
    b.label("al");
    b.atomicRmw(AluOp::kAdd, Reg::rax, b.symRef("counter"), Reg::rdx);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 300);
    b.jcc(CondCode::kLt, "al");
    b.halt();
    Program p = b.build();

    for (uint64_t seed = 1; seed <= 6; ++seed) {
        MachineConfig cfg = quietConfig();
        cfg.seed = seed;
        Machine m(p, cfg);
        m.addThread("main");
        m.run();
        EXPECT_EQ(m.memory().read(p.symbol("counter").addr, 8), 600u)
            << "seed " << seed;
    }
}

TEST(Machine, CasLoopImplementsSpinCounter)
{
    ProgramBuilder b;
    b.globalU64("v", 10);
    b.label("main");
    b.load(Reg::rax, b.symRef("v"));      // expected
    b.movrr(Reg::rbx, Reg::rax);
    b.addri(Reg::rbx, 5);                 // desired
    b.cas(b.symRef("v"), Reg::rax, Reg::rbx);
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    m.run();
    EXPECT_EQ(m.memory().read(p.symbol("v").addr, 8), 15u);
    EXPECT_TRUE(m.thread(0).flags.zf);
}

TEST(Machine, SchedulingIsDeterministicPerSeed)
{
    auto trace_of = [](uint64_t seed) {
        ProgramBuilder b;
        b.globalU64("x", 0);
        b.label("main");
        b.movri(Reg::r12, 0);
        b.spawn(Reg::r8, "w", Reg::r12);
        b.spawn(Reg::r9, "w", Reg::r12);
        b.join(Reg::r8);
        b.join(Reg::r9);
        b.halt();
        b.beginFunction("w");
        b.movri(Reg::rcx, 0);
        b.label("l");
        b.load(Reg::rax, b.symRef("x"));
        b.addri(Reg::rax, 1);
        b.store(b.symRef("x"), Reg::rax);
        b.addri(Reg::rcx, 1);
        b.cmpri(Reg::rcx, 100);
        b.jcc(CondCode::kLt, "l");
        b.halt();
        Program p = b.build();
        MachineConfig cfg;
        cfg.seed = seed;
        cfg.record_memory_log = true;
        Machine m(p, cfg);
        m.addThread("main");
        m.run();
        std::vector<std::pair<uint32_t, uint64_t>> out;
        for (const auto &e : m.memoryLog())
            out.emplace_back(e.tid, e.tsc);
        return out;
    };
    EXPECT_EQ(trace_of(5), trace_of(5));
    EXPECT_NE(trace_of(5), trace_of(6));
}

TEST(Machine, ManyThreadsOnFewCores)
{
    ProgramBuilder b;
    b.globalU64("done", 0);
    b.global("mtx", 8);
    b.label("main");
    // spawn 12 workers, join all (tids stored on the stack)
    b.movri(Reg::rcx, 0);
    b.label("spawn_loop");
    b.movri(Reg::r12, 0);
    b.spawn(Reg::rax, "tick", Reg::r12);
    b.push(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 12);
    b.jcc(CondCode::kLt, "spawn_loop");
    b.movri(Reg::rcx, 0);
    b.label("join_loop");
    b.pop(Reg::rax);
    b.join(Reg::rax);
    b.addri(Reg::rcx, 1);
    b.cmpri(Reg::rcx, 12);
    b.jcc(CondCode::kLt, "join_loop");
    b.halt();
    b.beginFunction("tick");
    b.lock(b.symRef("mtx"));
    b.load(Reg::rax, b.symRef("done"));
    b.addri(Reg::rax, 1);
    b.store(b.symRef("done"), Reg::rax);
    b.unlock(b.symRef("mtx"));
    b.halt();
    Program p = b.build();

    Machine m(p, quietConfig());
    m.addThread("main");
    EXPECT_EQ(m.run(), RunStatus::kFinished);
    EXPECT_EQ(m.memory().read(p.symbol("done").addr, 8), 12u);
    EXPECT_EQ(m.numThreads(), 13u);
}

} // namespace
} // namespace prorace::vm

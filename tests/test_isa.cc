/**
 * @file
 * Unit tests for the ISA: semantics, flags, operands, disassembly.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/insn.hh"
#include "isa/semantics.hh"

namespace prorace::isa {
namespace {

TEST(Semantics, AddComputesValueAndFlags)
{
    auto r = evalAlu(AluOp::kAdd, 2, 3);
    EXPECT_EQ(r.value, 5u);
    EXPECT_FALSE(r.flags.zf);
    EXPECT_FALSE(r.flags.sf);
    EXPECT_FALSE(r.flags.cf);
    EXPECT_FALSE(r.flags.of);
}

TEST(Semantics, AddCarryWraps)
{
    auto r = evalAlu(AluOp::kAdd, ~0ull, 1);
    EXPECT_EQ(r.value, 0u);
    EXPECT_TRUE(r.flags.zf);
    EXPECT_TRUE(r.flags.cf);
}

TEST(Semantics, AddSignedOverflow)
{
    const uint64_t int_max = 0x7fffffffffffffffull;
    auto r = evalAlu(AluOp::kAdd, int_max, 1);
    EXPECT_TRUE(r.flags.of);
    EXPECT_TRUE(r.flags.sf);
}

TEST(Semantics, SubFlagsMatchComparisonSemantics)
{
    // 3 - 5: negative, borrow.
    auto f = evalCmp(3, 5);
    EXPECT_FALSE(f.zf);
    EXPECT_TRUE(f.cf);
    EXPECT_TRUE(condHolds(CondCode::kLt, f));
    EXPECT_TRUE(condHolds(CondCode::kB, f));
    EXPECT_FALSE(condHolds(CondCode::kGe, f));

    // Equal.
    f = evalCmp(9, 9);
    EXPECT_TRUE(f.zf);
    EXPECT_TRUE(condHolds(CondCode::kEq, f));
    EXPECT_TRUE(condHolds(CondCode::kLe, f));
    EXPECT_TRUE(condHolds(CondCode::kGe, f));
}

TEST(Semantics, SignedVsUnsignedComparison)
{
    // -1 vs 1: signed less, unsigned greater.
    const uint64_t minus_one = ~0ull;
    auto f = evalCmp(minus_one, 1);
    EXPECT_TRUE(condHolds(CondCode::kLt, f));
    EXPECT_TRUE(condHolds(CondCode::kA, f));
    EXPECT_FALSE(condHolds(CondCode::kB, f));
}

TEST(Semantics, LogicOps)
{
    EXPECT_EQ(evalAlu(AluOp::kAnd, 0b1100, 0b1010).value, 0b1000u);
    EXPECT_EQ(evalAlu(AluOp::kOr, 0b1100, 0b1010).value, 0b1110u);
    EXPECT_EQ(evalAlu(AluOp::kXor, 0b1100, 0b1010).value, 0b0110u);
    EXPECT_TRUE(evalAlu(AluOp::kXor, 5, 5).flags.zf);
}

TEST(Semantics, Shifts)
{
    EXPECT_EQ(evalAlu(AluOp::kShl, 1, 4).value, 16u);
    EXPECT_EQ(evalAlu(AluOp::kShr, 0x8000000000000000ull, 63).value, 1u);
    EXPECT_EQ(evalAlu(AluOp::kSar, ~0ull, 8).value, ~0ull);
}

TEST(Semantics, TestSetsZeroFlag)
{
    EXPECT_TRUE(evalTest(0b0101, 0b1010).zf);
    EXPECT_FALSE(evalTest(0b0101, 0b0100).zf);
}

TEST(Semantics, EffectiveAddressBaseIndexScaleDisp)
{
    auto mem = MemOperand::baseIndex(Reg::rax, Reg::rbx, 4, 0x10);
    auto read = [](Reg r) -> uint64_t {
        return r == Reg::rax ? 1000 : 7;
    };
    EXPECT_EQ(effectiveAddress(mem, read), 1000 + 7 * 4 + 0x10u);
}

TEST(Semantics, EffectiveAddressRipRelativeIgnoresRegisters)
{
    auto mem = MemOperand::ripRel(0x1234);
    auto read = [](Reg) -> uint64_t {
        ADD_FAILURE() << "rip-relative EA must not read registers";
        return 0;
    };
    EXPECT_EQ(effectiveAddress(mem, read), 0x1234u);
}

TEST(Semantics, WidthTruncateAndExtend)
{
    EXPECT_EQ(truncateToWidth(0x1ffull, 1), 0xffu);
    EXPECT_EQ(extendFromWidth(0xff, 1, false), 0xffu);
    EXPECT_EQ(extendFromWidth(0xff, 1, true), ~0ull);
    EXPECT_EQ(extendFromWidth(0x7f, 1, true), 0x7full);
    EXPECT_EQ(extendFromWidth(0x80000000ull, 4, true), 0xffffffff80000000ull);
}

TEST(Semantics, InvertAluRecoversOperand)
{
    uint64_t a = 0;
    ASSERT_TRUE(invertAlu(AluOp::kAdd, 10, 3, a));
    EXPECT_EQ(a, 7u);
    ASSERT_TRUE(invertAlu(AluOp::kSub, 10, 3, a));
    EXPECT_EQ(a, 13u);
    ASSERT_TRUE(invertAlu(AluOp::kXor, 0b0110, 0b1010, a));
    EXPECT_EQ(a, 0b1100u);
    EXPECT_FALSE(invertAlu(AluOp::kAnd, 0, 0, a));
    EXPECT_FALSE(invertAlu(AluOp::kShl, 0, 0, a));
}

TEST(Semantics, InvertIsConsistentWithEval)
{
    for (AluOp op : {AluOp::kAdd, AluOp::kSub, AluOp::kXor}) {
        const uint64_t a = 0xdeadbeefcafef00dull, b = 0x1122334455667788ull;
        const uint64_t result = evalAlu(op, a, b).value;
        uint64_t recovered = 0;
        ASSERT_TRUE(invertAlu(op, result, b, recovered));
        EXPECT_EQ(recovered, a);
    }
}

TEST(OpcodeTraits, MemoryClassification)
{
    EXPECT_TRUE(isLoad(Op::kLoad));
    EXPECT_TRUE(isStore(Op::kStore));
    EXPECT_TRUE(isLoad(Op::kAtomicRmw));
    EXPECT_TRUE(isStore(Op::kAtomicRmw));
    EXPECT_TRUE(isStore(Op::kPush));
    EXPECT_TRUE(isLoad(Op::kPop));
    EXPECT_FALSE(accessesMemory(Op::kLea));
    EXPECT_FALSE(accessesMemory(Op::kLock));
}

TEST(OpcodeTraits, ControlFlowClassification)
{
    EXPECT_TRUE(isCondBranch(Op::kJcc));
    EXPECT_FALSE(isCondBranch(Op::kJmp));
    EXPECT_TRUE(isIndirectBranch(Op::kJmpInd));
    EXPECT_TRUE(isIndirectBranch(Op::kRet));
    EXPECT_FALSE(isIndirectBranch(Op::kCall));
    EXPECT_TRUE(isControlFlow(Op::kCall));
}

TEST(OpcodeTraits, SyncClassification)
{
    for (Op op : {Op::kLock, Op::kUnlock, Op::kCondWait, Op::kSpawn,
                  Op::kJoin, Op::kMalloc, Op::kFree, Op::kBarrier}) {
        EXPECT_TRUE(isSyncOp(op)) << opName(op);
    }
    EXPECT_FALSE(isSyncOp(Op::kLoad));
    EXPECT_FALSE(isSyncOp(Op::kSyscall));
}

TEST(Insn, ValidationCatchesBadOperands)
{
    Insn ok{.op = Op::kLoad, .dst = Reg::rax,
            .mem = MemOperand::baseDisp(Reg::rbx, 8)};
    EXPECT_EQ(validateInsn(ok), nullptr);

    Insn bad_width = ok;
    bad_width.width = 3;
    EXPECT_NE(validateInsn(bad_width), nullptr);

    Insn bad_scale = ok;
    bad_scale.mem.scale = 5;
    EXPECT_NE(validateInsn(bad_scale), nullptr);

    Insn no_dst{.op = Op::kLoad, .mem = MemOperand::baseDisp(Reg::rbx)};
    EXPECT_NE(validateInsn(no_dst), nullptr);

    Insn rip_with_base{.op = Op::kLoad, .dst = Reg::rax};
    rip_with_base.mem.rip_relative = true;
    rip_with_base.mem.base = Reg::rbx;
    EXPECT_NE(validateInsn(rip_with_base), nullptr);
}

TEST(Insn, PcRelativePredicate)
{
    Insn pc{.op = Op::kLoad, .dst = Reg::rax,
            .mem = MemOperand::ripRel(0x100)};
    EXPECT_TRUE(pc.pcRelative());
    Insn reg{.op = Op::kLoad, .dst = Reg::rax,
             .mem = MemOperand::baseDisp(Reg::rbx)};
    EXPECT_FALSE(reg.pcRelative());
    Insn alu{.op = Op::kAluRR, .dst = Reg::rax, .src = Reg::rbx};
    EXPECT_FALSE(alu.pcRelative());
}

TEST(Disasm, RendersRepresentativeInstructions)
{
    Insn load{.op = Op::kLoad, .dst = Reg::rdx,
              .mem = MemOperand::baseIndex(Reg::rbp, Reg::rbx, 4, 0x10)};
    EXPECT_NE(disassemble(load).find("rbp"), std::string::npos);
    EXPECT_NE(disassemble(load).find("rbx*4"), std::string::npos);

    Insn jcc{.op = Op::kJcc, .cond = CondCode::kNe, .target = 42};
    EXPECT_EQ(disassemble(jcc), "jne #42");

    Insn rip{.op = Op::kStore, .src = Reg::rax,
             .mem = MemOperand::ripRel(0x4000)};
    EXPECT_NE(disassemble(rip).find("rip"), std::string::npos);
}

TEST(Reg, NamesAndIndices)
{
    EXPECT_STREQ(regName(Reg::rax), "rax");
    EXPECT_STREQ(regName(Reg::r15), "r15");
    EXPECT_STREQ(regName(Reg::rip), "rip");
    EXPECT_TRUE(isGpr(Reg::rsp));
    EXPECT_FALSE(isGpr(Reg::rip));
    EXPECT_FALSE(isGpr(Reg::none));
    for (unsigned i = 0; i < kNumGprs; ++i)
        EXPECT_EQ(gprIndex(gprFromIndex(i)), i);
}

} // namespace
} // namespace prorace::isa

/**
 * @file
 * Property tests for the PR-2 shadow primitives: long random operation
 * sequences against trivially-correct models. FlatMap runs against
 * std::unordered_map with adversarial key distributions; the SSO
 * VectorClock runs against a dense vector model with tids crossing the
 * inline-4 spill boundary both ways.
 */

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "detect/fasttrack.hh"
#include "detect/vector_clock.hh"
#include "support/flat_map.hh"
#include "support/rng.hh"

#include "testutil.hh"

namespace {

using namespace prorace;
using detect::VectorClock;

/**
 * Keys that stress the open-addressing table: dense small integers
 * (clustered probes), one-bit patterns (weak hash inputs), and a few
 * scattered 64-bit values (growth).
 */
uint64_t
adversarialKey(Rng &rng)
{
    switch (rng.below(3)) {
      case 0: return rng.below(64);
      case 1: return uint64_t{1} << rng.below(64);
      default: return rng.next() | 1;
    }
}

TEST(FlatMapProps, RandomOpsMatchUnorderedMap)
{
    for (uint64_t seed : testutil::testSeeds({101ull, 202ull, 303ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        FlatMap<uint64_t> flat;
        std::unordered_map<uint64_t, uint64_t> ref;

        for (int op = 0; op < 60000; ++op) {
            const uint64_t key = adversarialKey(rng);
            switch (rng.below(4)) {
              case 0: // insert/overwrite
                flat[key] = static_cast<uint64_t>(op);
                ref[key] = static_cast<uint64_t>(op);
                break;
              case 1: // erase
                ASSERT_EQ(flat.erase(key), ref.erase(key) > 0);
                break;
              case 2: { // lookup
                const uint64_t *v = flat.find(key);
                const auto it = ref.find(key);
                ASSERT_EQ(v != nullptr, it != ref.end());
                if (v) {
                    ASSERT_EQ(*v, it->second);
                }
                break;
              }
              default: // operator[] default-constructs like the model
                ASSERT_EQ(flat[key], ref[key]);
                break;
            }
            ASSERT_EQ(flat.size(), ref.size());
        }

        // forEach visits exactly the model's surviving entries.
        std::unordered_map<uint64_t, uint64_t> visited;
        flat.forEach([&](uint64_t k, const uint64_t &v) {
            ASSERT_TRUE(visited.emplace(k, v).second)
                << "forEach visited key twice";
        });
        ASSERT_EQ(visited.size(), ref.size());
        for (const auto &[k, v] : ref) {
            const auto it = visited.find(k);
            ASSERT_NE(it, visited.end());
            ASSERT_EQ(it->second, v);
        }
    }
}

/** Dense-vector model of a vector clock. */
struct ClockModel {
    std::vector<uint64_t> c;

    void
    set(uint32_t tid, uint64_t v)
    {
        if (c.size() <= tid)
            c.resize(tid + 1, 0);
        c[tid] = v;
    }

    uint64_t
    get(uint32_t tid) const
    {
        return tid < c.size() ? c[tid] : 0;
    }

    void
    join(const ClockModel &o)
    {
        if (c.size() < o.c.size())
            c.resize(o.c.size(), 0);
        for (size_t i = 0; i < o.c.size(); ++i)
            c[i] = std::max(c[i], o.c[i]);
    }

    bool
    lessOrEqual(const ClockModel &o) const
    {
        for (size_t i = 0; i < c.size(); ++i)
            if (c[i] > o.get(static_cast<uint32_t>(i)))
                return false;
        return true;
    }
};

void
expectClockEquals(const VectorClock &vc, const ClockModel &model,
                  uint32_t max_tid)
{
    for (uint32_t t = 0; t <= max_tid; ++t)
        ASSERT_EQ(vc.get(t), model.get(t)) << "component " << t;
}

TEST(VectorClockProps, RandomOpsMatchDenseModel)
{
    // Tids up to 11 so clocks continually cross the inline-4 boundary.
    constexpr uint32_t kMaxTid = 11;
    for (uint64_t seed : testutil::testSeeds({7ull, 77ull, 777ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        constexpr size_t kClocks = 6;
        std::vector<VectorClock> clocks(kClocks);
        std::vector<ClockModel> models(kClocks);

        for (int op = 0; op < 30000; ++op) {
            const size_t i = rng.below(kClocks);
            const size_t j = rng.below(kClocks);
            switch (rng.below(6)) {
              case 0: { // set
                const uint32_t tid =
                    static_cast<uint32_t>(rng.below(kMaxTid + 1));
                const uint64_t v = rng.below(1 << 20);
                clocks[i].set(tid, v);
                models[i].set(tid, v);
                break;
              }
              case 1: // join
                clocks[i].join(clocks[j]);
                models[i].join(models[j]);
                break;
              case 2: // assign
                clocks[i].assign(clocks[j]);
                models[i] = models[j];
                break;
              case 3: // ordering agrees with the model
                ASSERT_EQ(clocks[i].lessOrEqual(clocks[j]),
                          models[i].lessOrEqual(models[j]))
                    << clocks[i].toString() << " vs "
                    << clocks[j].toString();
                break;
              case 4: { // copy construct + move construct round-trip
                VectorClock copy(clocks[i]);
                expectClockEquals(copy, models[i], kMaxTid);
                VectorClock moved(std::move(copy));
                expectClockEquals(moved, models[i], kMaxTid);
                break;
              }
              default: // clear
                clocks[i].clear();
                models[i] = ClockModel{};
                break;
            }
            expectClockEquals(clocks[i], models[i], kMaxTid);
        }

        // Reflexivity and join-absorption on the final states.
        for (size_t i = 0; i < kClocks; ++i) {
            ASSERT_TRUE(clocks[i].lessOrEqual(clocks[i]));
            VectorClock joined(clocks[i]);
            joined.join(clocks[(i + 1) % kClocks]);
            ASSERT_TRUE(clocks[i].lessOrEqual(joined));
        }
    }
}

/** Random clock with components across the inline-4 spill boundary. */
VectorClock
randomClock(Rng &rng)
{
    VectorClock vc;
    const uint32_t entries = static_cast<uint32_t>(rng.below(8));
    for (uint32_t i = 0; i < entries; ++i)
        vc.set(static_cast<uint32_t>(rng.below(12)),
               rng.below(1 << 16) + 1);
    return vc;
}

TEST(VectorClockProps, JoinIsIdempotentAndMonotone)
{
    // join(a, a) == a, and a <= b implies join(a, c) <= join(b, c) —
    // the property that makes rwlock read-clock accumulation and
    // semaphore snapshot joining sound in any order.
    for (uint64_t seed : testutil::testSeeds({5ull, 55ull, 555ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        for (int trial = 0; trial < 2000; ++trial) {
            VectorClock a = randomClock(rng);
            VectorClock c = randomClock(rng);
            VectorClock self(a);
            self.join(a);
            for (uint32_t t = 0; t < 12; ++t)
                ASSERT_EQ(self.get(t), a.get(t));

            VectorClock b(a); // b >= a by construction
            b.join(randomClock(rng));
            ASSERT_TRUE(a.lessOrEqual(b));
            VectorClock ac(a), bc(b);
            ac.join(c);
            bc.join(c);
            ASSERT_TRUE(ac.lessOrEqual(bc));
            ASSERT_TRUE(c.lessOrEqual(ac));
        }
    }
}

TEST(VectorClockProps, JoinIsCommutativeAndAssociative)
{
    // Order-insensitivity is what lets readUnlock deposits and
    // semaphore snapshot merges happen in any interleaving.
    for (uint64_t seed : testutil::testSeeds({8ull, 88ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        for (int trial = 0; trial < 2000; ++trial) {
            const VectorClock a = randomClock(rng);
            const VectorClock b = randomClock(rng);
            const VectorClock c = randomClock(rng);
            VectorClock ab(a), ba(b);
            ab.join(b);
            ba.join(a);
            VectorClock ab_c(ab), bc(b), a_bc(a);
            ab_c.join(c);
            bc.join(c);
            a_bc.join(bc);
            for (uint32_t t = 0; t < 12; ++t) {
                ASSERT_EQ(ab.get(t), ba.get(t));
                ASSERT_EQ(ab_c.get(t), a_bc.get(t));
            }
        }
    }
}

TEST(ReadSharedProps, DemotionDoesNotMaskLaterConflicts)
{
    // After a clean promotion/demotion cycle (shared readers fully
    // joined by a rwlock writer), the collapsed epoch state must still
    // catch a genuinely unordered write — demotion forgets the
    // readers, not the writer.
    using detect::FastTrack;
    using detect::MemAccess;
    FastTrack ft;
    for (uint32_t t = 1; t <= 3; ++t)
        ft.fork(0, t);
    for (uint32_t t = 1; t <= 2; ++t) {
        ft.readLock(t, 0xa000);
        MemAccess ma;
        ma.tid = t;
        ma.addr = 0x1000;
        ma.is_write = false;
        ma.insn_index = t;
        ft.access(ma);
        ft.readUnlock(t, 0xa000);
    }
    ft.writeLock(1, 0xa000);
    MemAccess w;
    w.tid = 1;
    w.addr = 0x1000;
    w.is_write = true;
    w.insn_index = 5;
    ft.access(w);
    ft.writeUnlock(1, 0xa000);
    ASSERT_TRUE(ft.report().empty());
    ASSERT_GT(ft.stats().read_shares, 0u);

    // Thread 3 never took the lock: its write races the collapsed
    // writer epoch, nothing else.
    MemAccess rogue;
    rogue.tid = 3;
    rogue.addr = 0x1000;
    rogue.is_write = true;
    rogue.insn_index = 9;
    ft.access(rogue);
    ASSERT_EQ(ft.report().size(), 1u);
    EXPECT_TRUE(ft.report().containsPair(5, 9));
}

TEST(ReadSharedProps, SameEpochReadRepetitionDoesNotChangeOutcomes)
{
    // Promotion idempotence: once a granule is read-shared, repeating
    // any reader's read at the same epoch must not change what a later
    // conflicting write reports.
    using detect::FastTrack;
    using detect::MemAccess;
    const auto read = [](uint32_t tid, uint32_t insn) {
        MemAccess ma;
        ma.tid = tid;
        ma.addr = 0x1000;
        ma.is_write = false;
        ma.insn_index = insn;
        return ma;
    };
    FastTrack once, twice;
    for (FastTrack *ft : {&once, &twice}) {
        ft->fork(0, 1);
        ft->fork(0, 2);
        ft->fork(0, 3);
    }
    for (uint32_t t = 1; t <= 3; ++t) {
        once.access(read(t, t));
        twice.access(read(t, t));
        twice.access(read(t, t)); // same epoch: must be absorbed
    }
    EXPECT_GT(twice.stats().epoch_fast_path, 0u);
    for (FastTrack *ft : {&once, &twice}) {
        MemAccess w;
        w.tid = 0;
        w.addr = 0x1000;
        w.is_write = true;
        w.insn_index = 9;
        ft->access(w);
    }
    ASSERT_EQ(once.report().size(), twice.report().size());
    ASSERT_EQ(once.report().size(), 1u);
    EXPECT_EQ(once.report().races()[0].prior.insn_index,
              twice.report().races()[0].prior.insn_index);
}

TEST(ReadSharedProps, PromotionDemotionCyclesStayClean)
{
    // Demotion correctness: rounds of concurrent readers (promoting the
    // granule to read-shared) followed by a writer that joined every
    // reader (demoting it back to epochs) must never report a race, in
    // any round, for any seed.
    using detect::FastTrack;
    using detect::MemAccess;
    constexpr uint32_t kThreads = 4;
    for (uint64_t seed : testutil::testSeeds({3ull, 33ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        FastTrack ft;
        const uint64_t rw = 0xa000;
        for (uint32_t t = 1; t < kThreads; ++t)
            ft.fork(0, t);
        for (int round = 0; round < 50; ++round) {
            // A random non-empty reader subset, in random order.
            std::vector<uint32_t> readers;
            for (uint32_t t = 0; t < kThreads; ++t)
                if (rng.below(2) == 0)
                    readers.push_back(t);
            if (readers.empty())
                readers.push_back(static_cast<uint32_t>(
                    rng.below(kThreads)));
            for (size_t i = readers.size(); i > 1; --i)
                std::swap(readers[i - 1], readers[rng.below(i)]);

            for (uint32_t t : readers) {
                ft.readLock(t, rw);
                MemAccess ma;
                ma.tid = t;
                ma.addr = 0x1000;
                ma.is_write = false;
                ma.insn_index = 1;
                ft.access(ma);
                ft.readUnlock(t, rw);
            }
            const uint32_t writer =
                static_cast<uint32_t>(rng.below(kThreads));
            ft.writeLock(writer, rw);
            MemAccess w;
            w.tid = writer;
            w.addr = 0x1000;
            w.is_write = true;
            w.insn_index = 2;
            ft.access(w);
            ft.writeUnlock(writer, rw);
        }
        EXPECT_TRUE(ft.report().empty()) << "seed " << seed;
        EXPECT_GT(ft.stats().read_shares, 0u);
    }
}

TEST(ReadSharedProps, LockDisciplinedRandomSchedulesNeverRace)
{
    // Drive the rwlock state machine with random legal schedules —
    // overlapping readers, exclusive writers, and writer-to-reader
    // downgrades — all touching one shared granule. Any reported race
    // would be a false positive in the two-clock rwlock model.
    using detect::FastTrack;
    using detect::MemAccess;
    constexpr uint32_t kThreads = 5;
    enum class Phase : uint8_t { kIdle, kReading, kWriting };
    for (uint64_t seed : testutil::testSeeds({9ull, 99ull, 999ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        FastTrack ft;
        const uint64_t rw = 0xa000;
        for (uint32_t t = 1; t < kThreads; ++t)
            ft.fork(0, t);

        std::vector<Phase> phase(kThreads, Phase::kIdle);
        uint32_t readers = 0;
        bool writer_active = false;
        const auto touch = [&](uint32_t t, bool is_write) {
            MemAccess ma;
            ma.tid = t;
            ma.addr = 0x1000;
            ma.is_write = is_write;
            ma.insn_index = t * 2 + (is_write ? 1 : 0);
            ft.access(ma);
        };
        for (int step = 0; step < 4000; ++step) {
            const uint32_t t = static_cast<uint32_t>(rng.below(kThreads));
            switch (phase[t]) {
              case Phase::kIdle:
                if (rng.below(4) == 0) {
                    if (!writer_active && readers == 0) {
                        ft.writeLock(t, rw);
                        touch(t, true);
                        phase[t] = Phase::kWriting;
                        writer_active = true;
                    }
                } else if (!writer_active) {
                    ft.readLock(t, rw);
                    touch(t, false);
                    phase[t] = Phase::kReading;
                    ++readers;
                }
                break;
              case Phase::kReading:
                if (rng.below(2) == 0) {
                    touch(t, false);
                } else {
                    ft.readUnlock(t, rw);
                    phase[t] = Phase::kIdle;
                    --readers;
                }
                break;
              case Phase::kWriting:
                switch (rng.below(3)) {
                  case 0:
                    touch(t, true);
                    break;
                  case 1: // downgrade: unlock + immediate read lock
                    ft.writeUnlock(t, rw);
                    ft.readLock(t, rw);
                    touch(t, false);
                    phase[t] = Phase::kReading;
                    writer_active = false;
                    ++readers;
                    break;
                  default:
                    ft.writeUnlock(t, rw);
                    phase[t] = Phase::kIdle;
                    writer_active = false;
                    break;
                }
                break;
            }
        }
        EXPECT_TRUE(ft.report().empty()) << "seed " << seed;
        EXPECT_GT(ft.stats().read_shares, 0u);
    }
}

} // namespace

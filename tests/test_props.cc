/**
 * @file
 * Property tests for the PR-2 shadow primitives: long random operation
 * sequences against trivially-correct models. FlatMap runs against
 * std::unordered_map with adversarial key distributions; the SSO
 * VectorClock runs against a dense vector model with tids crossing the
 * inline-4 spill boundary both ways.
 */

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "detect/vector_clock.hh"
#include "support/flat_map.hh"
#include "support/rng.hh"

#include "testutil.hh"

namespace {

using namespace prorace;
using detect::VectorClock;

/**
 * Keys that stress the open-addressing table: dense small integers
 * (clustered probes), one-bit patterns (weak hash inputs), and a few
 * scattered 64-bit values (growth).
 */
uint64_t
adversarialKey(Rng &rng)
{
    switch (rng.below(3)) {
      case 0: return rng.below(64);
      case 1: return uint64_t{1} << rng.below(64);
      default: return rng.next() | 1;
    }
}

TEST(FlatMapProps, RandomOpsMatchUnorderedMap)
{
    for (uint64_t seed : testutil::testSeeds({101ull, 202ull, 303ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        FlatMap<uint64_t> flat;
        std::unordered_map<uint64_t, uint64_t> ref;

        for (int op = 0; op < 60000; ++op) {
            const uint64_t key = adversarialKey(rng);
            switch (rng.below(4)) {
              case 0: // insert/overwrite
                flat[key] = static_cast<uint64_t>(op);
                ref[key] = static_cast<uint64_t>(op);
                break;
              case 1: // erase
                ASSERT_EQ(flat.erase(key), ref.erase(key) > 0);
                break;
              case 2: { // lookup
                const uint64_t *v = flat.find(key);
                const auto it = ref.find(key);
                ASSERT_EQ(v != nullptr, it != ref.end());
                if (v) {
                    ASSERT_EQ(*v, it->second);
                }
                break;
              }
              default: // operator[] default-constructs like the model
                ASSERT_EQ(flat[key], ref[key]);
                break;
            }
            ASSERT_EQ(flat.size(), ref.size());
        }

        // forEach visits exactly the model's surviving entries.
        std::unordered_map<uint64_t, uint64_t> visited;
        flat.forEach([&](uint64_t k, const uint64_t &v) {
            ASSERT_TRUE(visited.emplace(k, v).second)
                << "forEach visited key twice";
        });
        ASSERT_EQ(visited.size(), ref.size());
        for (const auto &[k, v] : ref) {
            const auto it = visited.find(k);
            ASSERT_NE(it, visited.end());
            ASSERT_EQ(it->second, v);
        }
    }
}

/** Dense-vector model of a vector clock. */
struct ClockModel {
    std::vector<uint64_t> c;

    void
    set(uint32_t tid, uint64_t v)
    {
        if (c.size() <= tid)
            c.resize(tid + 1, 0);
        c[tid] = v;
    }

    uint64_t
    get(uint32_t tid) const
    {
        return tid < c.size() ? c[tid] : 0;
    }

    void
    join(const ClockModel &o)
    {
        if (c.size() < o.c.size())
            c.resize(o.c.size(), 0);
        for (size_t i = 0; i < o.c.size(); ++i)
            c[i] = std::max(c[i], o.c[i]);
    }

    bool
    lessOrEqual(const ClockModel &o) const
    {
        for (size_t i = 0; i < c.size(); ++i)
            if (c[i] > o.get(static_cast<uint32_t>(i)))
                return false;
        return true;
    }
};

void
expectClockEquals(const VectorClock &vc, const ClockModel &model,
                  uint32_t max_tid)
{
    for (uint32_t t = 0; t <= max_tid; ++t)
        ASSERT_EQ(vc.get(t), model.get(t)) << "component " << t;
}

TEST(VectorClockProps, RandomOpsMatchDenseModel)
{
    // Tids up to 11 so clocks continually cross the inline-4 boundary.
    constexpr uint32_t kMaxTid = 11;
    for (uint64_t seed : testutil::testSeeds({7ull, 77ull, 777ull})) {
        PRORACE_SEED_TRACE(seed);
        Rng rng(seed);
        constexpr size_t kClocks = 6;
        std::vector<VectorClock> clocks(kClocks);
        std::vector<ClockModel> models(kClocks);

        for (int op = 0; op < 30000; ++op) {
            const size_t i = rng.below(kClocks);
            const size_t j = rng.below(kClocks);
            switch (rng.below(6)) {
              case 0: { // set
                const uint32_t tid =
                    static_cast<uint32_t>(rng.below(kMaxTid + 1));
                const uint64_t v = rng.below(1 << 20);
                clocks[i].set(tid, v);
                models[i].set(tid, v);
                break;
              }
              case 1: // join
                clocks[i].join(clocks[j]);
                models[i].join(models[j]);
                break;
              case 2: // assign
                clocks[i].assign(clocks[j]);
                models[i] = models[j];
                break;
              case 3: // ordering agrees with the model
                ASSERT_EQ(clocks[i].lessOrEqual(clocks[j]),
                          models[i].lessOrEqual(models[j]))
                    << clocks[i].toString() << " vs "
                    << clocks[j].toString();
                break;
              case 4: { // copy construct + move construct round-trip
                VectorClock copy(clocks[i]);
                expectClockEquals(copy, models[i], kMaxTid);
                VectorClock moved(std::move(copy));
                expectClockEquals(moved, models[i], kMaxTid);
                break;
              }
              default: // clear
                clocks[i].clear();
                models[i] = ClockModel{};
                break;
            }
            expectClockEquals(clocks[i], models[i], kMaxTid);
        }

        // Reflexivity and join-absorption on the final states.
        for (size_t i = 0; i < kClocks; ++i) {
            ASSERT_TRUE(clocks[i].lessOrEqual(clocks[i]));
            VectorClock joined(clocks[i]);
            joined.join(clocks[(i + 1) % kClocks]);
            ASSERT_TRUE(clocks[i].lessOrEqual(joined));
        }
    }
}

} // namespace
